// Package faults builds deterministic, seed-driven fault schedules for the
// CONGEST simulator: per-edge Bernoulli message drop, duplication, bounded
// reordering (random extra delivery delays), and crash-restart outages of
// nodes at randomly scheduled rounds. An Injector implements
// congest.FaultInjector, so a schedule plugs into a run via
// congest.Options.Injector.
//
// Every decision is a pure function of (Config, the engine's call sequence):
// the injector owns two PRNG streams seeded from Config.Seed — one consumed
// by per-message draws in OnSend (which the engine calls serially in global
// sender-vertex delivery order), one by per-node crash draws in RoundStart —
// so the same Config replays the same chaos run bit-for-bit at any worker
// count, and message faults never perturb crash schedules.
package faults

import (
	"fmt"
	"math/rand"

	"repro/internal/congest"
)

// crashStreamSalt separates the crash-schedule PRNG stream from the
// per-message stream derived from the same user-facing seed.
const crashStreamSalt = int64(0x5E3779B97F4A7C15)

// MaxReorderWindow bounds how many extra rounds a delayed copy may wait.
// Wider windows make a schedule pathological rather than interesting: the
// reliable adapter's retransmission timeout has to out-wait the window.
const MaxReorderWindow = 16

// MaxOutage bounds a single crash-restart outage, in rounds.
const MaxOutage = 8

// Config describes a fault schedule. The zero value injects nothing (an
// Injector over it is fully transparent). Rates are probabilities; New
// clamps every field into its documented range, so a Config decoded from
// hostile bytes (see DecodeSchedule) is always safe to run.
type Config struct {
	// Seed drives both PRNG streams. Schedules with equal Configs are
	// identical; schedules differing only in Seed are independent samples of
	// the same fault distribution.
	Seed int64
	// DropRate is the per-message probability the network discards the
	// message. Clamped to [0, 1].
	DropRate float64
	// DupRate is the per-message probability the network delivers one extra
	// copy; the copy's extra delay is drawn from [0, ReorderWindow].
	// Clamped to [0, 1].
	DupRate float64
	// ReorderRate is the per-message probability the (undropped) original
	// copy is deferred by 1..ReorderWindow extra rounds, arriving after
	// traffic sent later. Clamped to [0, 1]; inert when ReorderWindow is 0.
	ReorderRate float64
	// ReorderWindow is the maximum extra delay in rounds. Clamped to
	// [0, MaxReorderWindow].
	ReorderWindow int
	// CrashRate is the per-node per-round probability an up node crashes.
	// While down a node does not execute and loses everything addressed to
	// it; its protocol state survives (crash-restart with stable memory).
	// Clamped to [0, 1].
	CrashRate float64
	// MinOutage/MaxOutage bound the rounds a crashed node stays down,
	// drawn uniformly. Clamped to [1, MaxOutage] with MinOutage <= MaxOutage
	// (both default to 1 when unset).
	MinOutage int
	MaxOutage int
}

// Noop reports whether the schedule can never perturb a run: every effective
// rate is zero after clamping (a positive ReorderRate is still inert when the
// window clamps to zero). Drivers use this to skip the injector — and the
// serial delivery it forces — when the requested chaos is vacuous.
func (c Config) Noop() bool {
	return clamp01(c.DropRate) == 0 &&
		clamp01(c.DupRate) == 0 &&
		clamp01(c.CrashRate) == 0 &&
		(clamp01(c.ReorderRate) == 0 || c.ReorderWindow <= 0)
}

func clamp01(x float64) float64 {
	// NaN compares false to everything; map it to 0 explicitly.
	if !(x > 0) {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

func clampInt(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// normalized returns the Config with every field forced into range.
func (c Config) normalized() Config {
	c.DropRate = clamp01(c.DropRate)
	c.DupRate = clamp01(c.DupRate)
	c.ReorderRate = clamp01(c.ReorderRate)
	c.CrashRate = clamp01(c.CrashRate)
	c.ReorderWindow = clampInt(c.ReorderWindow, 0, MaxReorderWindow)
	c.MinOutage = clampInt(c.MinOutage, 1, MaxOutage)
	c.MaxOutage = clampInt(c.MaxOutage, c.MinOutage, MaxOutage)
	return c
}

// Quiet reports whether the schedule injects nothing: an Injector over a
// quiet Config is fully transparent (it draws no randomness at all, so even
// co-installed CorruptProb streams are unaffected).
func (c Config) Quiet() bool {
	c = c.normalized()
	return c.DropRate == 0 && c.DupRate == 0 && c.CrashRate == 0 &&
		(c.ReorderRate == 0 || c.ReorderWindow == 0)
}

// String summarizes the normalized schedule for logs and error messages.
func (c Config) String() string {
	c = c.normalized()
	return fmt.Sprintf("faults{seed=%d drop=%g dup=%g reorder=%g/%d crash=%g/%d-%d}",
		c.Seed, c.DropRate, c.DupRate, c.ReorderRate, c.ReorderWindow,
		c.CrashRate, c.MinOutage, c.MaxOutage)
}

// Injector realizes a Config as a congest.FaultInjector. Not safe for
// concurrent use by multiple simulations; the engine's contract (serial
// RunStart/RoundStart/OnSend, read-only NodeDown) is exactly what it needs.
type Injector struct {
	cfg   Config
	n     int
	msg   *rand.Rand // per-message draws, consumed in delivery order
	crash *rand.Rand // per-node crash draws, consumed in vertex order

	down       []bool
	outageLeft []int
}

// New builds an Injector over the normalized Config. The injector is reset
// by the engine at RunStart, so one Injector value can be reused across runs
// and every run replays the same schedule.
func New(cfg Config) *Injector {
	return &Injector{cfg: cfg.normalized()}
}

// Config returns the normalized schedule the injector realizes.
func (inj *Injector) Config() Config { return inj.cfg }

// RunStart implements congest.FaultInjector.
func (inj *Injector) RunStart(n int) {
	inj.n = n
	inj.msg = rand.New(rand.NewSource(inj.cfg.Seed))
	inj.crash = rand.New(rand.NewSource(inj.cfg.Seed ^ crashStreamSalt))
	if cap(inj.down) < n {
		inj.down = make([]bool, n)
		inj.outageLeft = make([]int, n)
	}
	inj.down = inj.down[:n]
	inj.outageLeft = inj.outageLeft[:n]
	for v := 0; v < n; v++ {
		inj.down[v] = false
		inj.outageLeft[v] = 0
	}
}

// RoundStart implements congest.FaultInjector: running outages tick down,
// and each up node crashes with CrashRate for a uniform 1..MaxOutage-round
// outage. Crash draws come from their own stream, so message traffic (and
// therefore OnSend draw counts) cannot shift crash schedules.
func (inj *Injector) RoundStart(round int) {
	if inj.cfg.CrashRate <= 0 {
		return
	}
	for v := 0; v < inj.n; v++ {
		if inj.outageLeft[v] > 0 {
			inj.outageLeft[v]--
			inj.down[v] = true
			continue
		}
		if inj.crash.Float64() < inj.cfg.CrashRate {
			span := inj.cfg.MinOutage
			if inj.cfg.MaxOutage > inj.cfg.MinOutage {
				span += inj.crash.Intn(inj.cfg.MaxOutage - inj.cfg.MinOutage + 1)
			}
			inj.down[v] = true
			inj.outageLeft[v] = span - 1
		} else {
			inj.down[v] = false
		}
	}
}

// NodeDown implements congest.FaultInjector as a pure lookup into the state
// RoundStart computed (safe for concurrent readers).
func (inj *Injector) NodeDown(round, vertex int) bool { return inj.down[vertex] }

// OnSend implements congest.FaultInjector. Draws are made only for
// mechanisms the Config enables, so a schedule with one knob turned replays
// identically when the other knobs stay zero.
func (inj *Injector) OnSend(round, from, to int) congest.FaultPlan {
	var plan congest.FaultPlan
	if inj.cfg.DropRate > 0 && inj.msg.Float64() < inj.cfg.DropRate {
		plan.Drop = true
	}
	if inj.cfg.DupRate > 0 && inj.msg.Float64() < inj.cfg.DupRate {
		plan.Dup = 1
		if inj.cfg.ReorderWindow > 0 {
			plan.DupDelay = inj.msg.Intn(inj.cfg.ReorderWindow + 1)
		}
	}
	if !plan.Drop && inj.cfg.ReorderRate > 0 && inj.cfg.ReorderWindow > 0 &&
		inj.msg.Float64() < inj.cfg.ReorderRate {
		plan.Delay = 1 + inj.msg.Intn(inj.cfg.ReorderWindow)
	}
	return plan
}

// DecodeSchedule derives a Config from arbitrary bytes — the fuzzing entry
// point: any input decodes to a safe, normalized schedule, and equal inputs
// decode to equal schedules. Short (or empty) inputs are zero-padded, so the
// empty string decodes to a quiet schedule with seed 0.
func DecodeSchedule(data []byte) Config {
	var buf [16]byte
	copy(buf[:], data)
	le64 := func(off int) uint64 {
		var x uint64
		for i := 0; i < 8; i++ {
			x |= uint64(buf[off+i]) << uint(8*i)
		}
		return x
	}
	seed := int64(le64(0))
	// One byte per knob: 0 disables cleanly, 255 maps just under the cap.
	rate := func(b byte, max float64) float64 { return float64(b) / 256 * max }
	cfg := Config{
		Seed: seed,
		// Drop is capped at 50%: beyond that nothing terminates inside any
		// reasonable retry budget and every run degenerates into the same
		// ErrUnrecoverable path.
		DropRate:      rate(buf[8], 0.5),
		DupRate:       rate(buf[9], 1),
		ReorderRate:   rate(buf[10], 1),
		ReorderWindow: int(buf[11]) * (MaxReorderWindow + 1) / 256,
		// Crash is capped low for the same reason: it is a per-node,
		// per-round rate.
		CrashRate: rate(buf[12], 0.05),
		MinOutage: 1 + int(buf[13])*MaxOutage/256,
		MaxOutage: 1 + int(buf[14])*MaxOutage/256,
	}
	return cfg.normalized()
}
