package faults

import (
	"math"
	"testing"
)

func TestFrameInjectorDeterminism(t *testing.T) {
	cfg := Config{Seed: 42, DropRate: 0.3, DupRate: 0.2, ReorderRate: 0.2, ReorderWindow: 4}
	a := NewFrameInjector(cfg)
	b := NewFrameInjector(cfg)
	for round := 0; round < 50; round++ {
		for src := 0; src < 4; src++ {
			for dst := 0; dst < 4; dst++ {
				p1 := a.OnFrame(round, src, dst)
				p2 := b.OnFrame(round, src, dst)
				if p1 != p2 {
					t.Fatalf("(%d,%d,%d): plans diverged: %+v vs %+v", round, src, dst, p1, p2)
				}
				// Re-evaluation on the same injector must agree too — the
				// coordinator may consult a plan more than once.
				if p3 := a.OnFrame(round, src, dst); p3 != p1 {
					t.Fatalf("(%d,%d,%d): re-evaluation shifted: %+v vs %+v", round, src, dst, p3, p1)
				}
			}
		}
	}
}

func TestFrameInjectorIntraShardUntouched(t *testing.T) {
	inj := NewFrameInjector(Config{Seed: 7, DropRate: 1, DupRate: 1, ReorderRate: 1, ReorderWindow: 8})
	for round := 0; round < 100; round++ {
		for s := 0; s < 5; s++ {
			if p := inj.OnFrame(round, s, s); p != (FramePlan{}) {
				t.Fatalf("round %d shard %d: loopback frame perturbed: %+v", round, s, p)
			}
		}
	}
}

func TestFrameInjectorQuiet(t *testing.T) {
	cases := []struct {
		name  string
		cfg   Config
		quiet bool
	}{
		{"zero", Config{}, true},
		{"seed_only", Config{Seed: 9}, true},
		{"crash_only", Config{CrashRate: 0.5, MaxOutage: 3}, true}, // inert at the frame layer
		{"reorder_no_window", Config{ReorderRate: 0.5}, true},
		{"drop", Config{DropRate: 0.1}, false},
		{"dup", Config{DupRate: 0.1}, false},
		{"reorder", Config{ReorderRate: 0.1, ReorderWindow: 2}, false},
	}
	for _, tc := range cases {
		inj := NewFrameInjector(tc.cfg)
		if got := inj.Quiet(); got != tc.quiet {
			t.Errorf("%s: Quiet() = %v, want %v", tc.name, got, tc.quiet)
		}
		if tc.quiet {
			for round := 0; round < 50; round++ {
				if p := inj.OnFrame(round, 0, 1); p.Drop || p.Dup || p.Delay > 0 {
					t.Errorf("%s: quiet injector produced %+v at round %d", tc.name, p, round)
					break
				}
			}
		}
	}
}

// TestFrameInjectorRatesAndBounds: empirical rates land near the configured
// probabilities and every delay stays inside the reorder window.
func TestFrameInjectorRatesAndBounds(t *testing.T) {
	cfg := Config{Seed: 1234, DropRate: 0.25, DupRate: 0.15, ReorderRate: 0.2, ReorderWindow: 3}
	inj := NewFrameInjector(cfg)
	var n, drops, dups, delays int
	for round := 0; round < 2000; round++ {
		for src := 0; src < 3; src++ {
			for dst := 0; dst < 3; dst++ {
				if src == dst {
					continue
				}
				p := inj.OnFrame(round, src, dst)
				n++
				if p.Drop {
					drops++
				}
				if p.Dup {
					dups++
					if p.DupDelay < 0 || p.DupDelay > cfg.ReorderWindow {
						t.Fatalf("DupDelay %d outside [0, %d]", p.DupDelay, cfg.ReorderWindow)
					}
				}
				if p.Delay != 0 {
					delays++
					if p.Drop {
						t.Fatal("dropped frame also delayed")
					}
					if p.Delay < 1 || p.Delay > cfg.ReorderWindow {
						t.Fatalf("Delay %d outside [1, %d]", p.Delay, cfg.ReorderWindow)
					}
				}
			}
		}
	}
	check := func(name string, got int, want float64) {
		rate := float64(got) / float64(n)
		if math.Abs(rate-want) > 0.02 {
			t.Errorf("%s rate %.4f, want %.2f ± 0.02 (%d of %d)", name, rate, want, got, n)
		}
	}
	check("drop", drops, cfg.DropRate)
	check("dup", dups, cfg.DupRate)
	// Delay only applies to undropped frames.
	check("delay", delays, cfg.ReorderRate*(1-cfg.DropRate))
}

// TestFrameInjectorSeedIndependence: different seeds give different
// schedules (same distribution, independent samples).
func TestFrameInjectorSeedIndependence(t *testing.T) {
	a := NewFrameInjector(Config{Seed: 1, DropRate: 0.5})
	b := NewFrameInjector(Config{Seed: 2, DropRate: 0.5})
	same := 0
	const total = 500
	for round := 0; round < total; round++ {
		if a.OnFrame(round, 0, 1) == b.OnFrame(round, 0, 1) {
			same++
		}
	}
	if same == total {
		t.Fatal("seeds 1 and 2 produced identical schedules")
	}
}

// TestFrameInjectorNormalizes: the constructor clamps rates like the
// message-level injector does.
func TestFrameInjectorNormalizes(t *testing.T) {
	inj := NewFrameInjector(Config{DropRate: 7, DupRate: -3, ReorderWindow: 1 << 30})
	cfg := inj.Config()
	if cfg.DropRate != 1 || cfg.DupRate != 0 {
		t.Errorf("rates not clamped: %+v", cfg)
	}
	if cfg.ReorderWindow > MaxReorderWindow {
		t.Errorf("window not clamped: %d", cfg.ReorderWindow)
	}
}
