package faults

import (
	"errors"
	"testing"

	"repro/internal/congest"
	"repro/internal/graph/gen"
)

// FuzzFaultSchedule decodes arbitrary bytes into a fault schedule and runs
// it against the simulator twice (sequential and parallel). Whatever the
// schedule, the run must terminate inside the round limit or fail with
// ErrRoundLimit — never panic, deadlock, or report a bandwidth violation
// (injected duplicates are network faults, not sender traffic, so they can
// never trip the per-edge cap) — and both runs must agree bit-for-bit.
func FuzzFaultSchedule(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 255, 255, 255, 255, 255, 255, 255, 255})
	f.Add([]byte{9, 0, 0, 0, 0, 0, 0, 0, 128, 0, 0, 0, 0, 0, 0, 0})    // drop-heavy
	f.Add([]byte{7, 0, 0, 0, 0, 0, 0, 0, 0, 200, 100, 90, 0, 0, 0, 0}) // dup+reorder
	f.Add([]byte{3, 1, 4, 1, 5, 9, 2, 6, 0, 0, 0, 0, 255, 64, 192, 0}) // crash-heavy

	g, _ := gen.BoundedTreedepth(24, 3, 0.3, 5)
	f.Fuzz(func(t *testing.T, data []byte) {
		cfg := DecodeSchedule(data)
		run := func(parallel bool) (congest.Stats, error) {
			sim, err := congest.NewSimulator(g, congest.Options{
				Injector:   New(cfg),
				RoundLimit: 256,
				Parallel:   parallel,
				Workers:    2,
			})
			if err != nil {
				t.Fatal(err)
			}
			return sim.Run(func(v int) congest.Node { return &floodNode{lastRound: 6} })
		}
		seqStats, seqErr := run(false)
		parStats, parErr := run(true)
		for _, err := range []error{seqErr, parErr} {
			if err != nil && !errors.Is(err, congest.ErrRoundLimit) {
				t.Fatalf("schedule %v: unexpected simulator error: %v", cfg, err)
			}
		}
		if (seqErr == nil) != (parErr == nil) || seqStats != parStats {
			t.Fatalf("schedule %v: sequential and parallel runs diverged:\n%+v (%v)\n%+v (%v)",
				cfg, seqStats, seqErr, parStats, parErr)
		}
	})
}
