package faults

// Frame-level fault injection for the multi-process transport. Where
// Injector perturbs individual logical messages inside one process,
// FrameInjector perturbs the shard-to-shard message batches of the
// multiproc round protocol as they cross the coordinator: a dropped frame
// loses every message in the batch, a delayed frame holds the whole batch
// for d rounds, a duplicated frame re-delivers a copy later. This models a
// lossy datagram network between shard processes; protocols.Reliable's ARQ
// runs unchanged on top and must recover the run.
//
// Unlike Injector, FrameInjector is stateless: every decision is a pure
// hash of (Seed, round, source shard, destination shard), so the coordinator
// can evaluate plans in any order — or re-evaluate them after a retry —
// and the schedule never shifts. Intra-shard batches (src == dst) are never
// touched; they model a process's loopback, which real networks do not
// lose.

// Per-decision lanes keep the drop/dup/delay draws of one frame
// independent: each decision hashes the same key mixed with its own salt.
const (
	frameLaneDrop     = 0x9E3779B97F4A7C15
	frameLaneDup      = 0xC2B2AE3D27D4EB4F
	frameLaneDupDelay = 0x165667B19E3779F9
	frameLaneDelay    = 0x27D4EB2F165667C5
)

// FramePlan describes what the transport does to one shard-to-shard batch.
// The zero value is transparent delivery.
type FramePlan struct {
	// Drop discards the original batch entirely.
	Drop bool
	// Delay defers the (undropped) original by this many rounds; its
	// messages arrive with round r+Delay's delayed traffic.
	Delay int
	// Dup delivers one extra copy of the batch, DupDelay rounds late
	// (DupDelay 0 re-delivers within the same round, after normal traffic).
	Dup      bool
	DupDelay int
}

// FrameInjector realizes a Config at the frame layer. The crash fields of
// the Config are ignored — process crashes are not modeled; the multiproc
// session layer rejects schedules that request them. Safe for concurrent
// use (it holds no mutable state).
type FrameInjector struct {
	cfg Config
}

// NewFrameInjector builds the stateless injector over the normalized
// Config.
func NewFrameInjector(cfg Config) *FrameInjector {
	return &FrameInjector{cfg: cfg.normalized()}
}

// Config returns the normalized schedule the injector realizes.
func (fi *FrameInjector) Config() Config { return fi.cfg }

// Quiet reports whether the injector can never perturb a frame (crash
// fields do not count — they are inert at this layer).
func (fi *FrameInjector) Quiet() bool {
	return fi.cfg.DropRate == 0 && fi.cfg.DupRate == 0 &&
		(fi.cfg.ReorderRate == 0 || fi.cfg.ReorderWindow == 0)
}

// OnFrame returns the plan for the round-`round` data frame from shard src
// to shard dst. Pure: equal arguments (under an equal Config) always return
// equal plans. Intra-shard frames are always delivered untouched.
func (fi *FrameInjector) OnFrame(round, src, dst int) FramePlan {
	var plan FramePlan
	if src == dst {
		return plan
	}
	key := uint64(fi.cfg.Seed) ^
		uint64(round)*0x9E3779B97F4A7C15 ^
		uint64(src)*0xBF58476D1CE4E5B9 ^
		uint64(dst)*0x94D049BB133111EB
	if fi.cfg.DropRate > 0 && frameDraw(key, frameLaneDrop) < fi.cfg.DropRate {
		plan.Drop = true
	}
	if fi.cfg.DupRate > 0 && frameDraw(key, frameLaneDup) < fi.cfg.DupRate {
		plan.Dup = true
		if fi.cfg.ReorderWindow > 0 {
			plan.DupDelay = int(frameDraw(key, frameLaneDupDelay) * float64(fi.cfg.ReorderWindow+1))
		}
	}
	if !plan.Drop && fi.cfg.ReorderRate > 0 && fi.cfg.ReorderWindow > 0 &&
		frameDraw(key, frameLaneDelay) < fi.cfg.ReorderRate {
		plan.Delay = 1 + int(frameDraw(key, frameLaneDelay^frameLaneDup)*float64(fi.cfg.ReorderWindow))
	}
	return plan
}

// frameDraw hashes (key, lane) to a uniform float64 in [0, 1) via
// splitmix64's finalizer.
func frameDraw(key, lane uint64) float64 {
	z := key + lane
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}
