package faults

import (
	"math"
	"strings"
	"testing"

	"repro/internal/congest"
	"repro/internal/graph/gen"
)

// floodNode is a crash-tolerant workload: it broadcasts one byte every round
// and halts purely on the round number, so no fault schedule can wedge it.
type floodNode struct{ lastRound int }

func (f *floodNode) Init(env *congest.Env) []congest.Outgoing {
	return []congest.Outgoing{congest.Broadcast(congest.Message{0})}
}

func (f *floodNode) Round(env *congest.Env, inbox []congest.Incoming) ([]congest.Outgoing, bool) {
	if env.Round >= f.lastRound {
		return nil, true
	}
	return []congest.Outgoing{congest.Broadcast(congest.Message{byte(env.Round)})}, false
}

// runFlood runs the flood workload under the given schedule and returns the
// stats. Crash outages can push halting past lastRound, so the round limit
// leaves generous headroom.
func runFlood(t *testing.T, cfg Config, n, lastRound int) congest.Stats {
	t.Helper()
	g, _ := gen.BoundedTreedepth(n, 3, 0.3, 11)
	sim, err := congest.NewSimulator(g, congest.Options{Injector: New(cfg), RoundLimit: lastRound + 200})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := sim.Run(func(v int) congest.Node { return &floodNode{lastRound: lastRound} })
	if err != nil {
		t.Fatal(err)
	}
	return stats
}

func TestNormalizeClamps(t *testing.T) {
	c := Config{
		DropRate:      -1,
		DupRate:       3,
		ReorderRate:   math.NaN(),
		CrashRate:     math.Inf(1),
		ReorderWindow: 1000,
		MinOutage:     -5,
		MaxOutage:     1000,
	}.normalized()
	if c.DropRate != 0 || c.DupRate != 1 || c.ReorderRate != 0 || c.CrashRate != 1 {
		t.Fatalf("rates not clamped: %+v", c)
	}
	if c.ReorderWindow != MaxReorderWindow {
		t.Fatalf("ReorderWindow = %d, want %d", c.ReorderWindow, MaxReorderWindow)
	}
	if c.MinOutage != 1 || c.MaxOutage != MaxOutage {
		t.Fatalf("outage bounds not clamped: %+v", c)
	}
	if c2 := (Config{MinOutage: 5, MaxOutage: 2}).normalized(); c2.MaxOutage < c2.MinOutage {
		t.Fatalf("MaxOutage < MinOutage after normalize: %+v", c2)
	}
}

func TestQuiet(t *testing.T) {
	for _, tc := range []struct {
		cfg  Config
		want bool
	}{
		{Config{}, true},
		{Config{Seed: 42}, true},
		{Config{ReorderRate: 0.5}, true}, // window 0: reorder is inert
		{Config{ReorderRate: 0.5, ReorderWindow: 2}, false},
		{Config{DropRate: 0.01}, false},
		{Config{DupRate: 0.01}, false},
		{Config{CrashRate: 0.01}, false},
	} {
		if got := tc.cfg.Quiet(); got != tc.want {
			t.Errorf("Quiet(%+v) = %v, want %v", tc.cfg, got, tc.want)
		}
	}
}

func TestStringMentionsKnobs(t *testing.T) {
	s := Config{Seed: 9, DropRate: 0.25}.String()
	for _, want := range []string{"seed=9", "drop=0.25"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q, missing %q", s, want)
		}
	}
}

// TestQuietScheduleTransparent: a quiet schedule must leave the run's stats
// exactly equal to a run with no injector at all.
func TestQuietScheduleTransparent(t *testing.T) {
	g, _ := gen.BoundedTreedepth(80, 3, 0.3, 11)
	run := func(opts congest.Options) congest.Stats {
		sim, err := congest.NewSimulator(g, opts)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := sim.Run(func(v int) congest.Node { return &floodNode{lastRound: 6} })
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	base := run(congest.Options{})
	quiet := run(congest.Options{Injector: New(Config{Seed: 1234})})
	if base != quiet {
		t.Fatalf("quiet schedule changed stats: %+v vs %+v", quiet, base)
	}
}

// TestReplayDeterminism: the same Config replays the same fault stream, and
// one Injector value reused across runs re-seeds itself each RunStart.
func TestReplayDeterminism(t *testing.T) {
	cfg := Config{Seed: 77, DropRate: 0.2, DupRate: 0.1, ReorderRate: 0.1, ReorderWindow: 3, CrashRate: 0.01}
	a := runFlood(t, cfg, 60, 8)
	b := runFlood(t, cfg, 60, 8)
	if a != b {
		t.Fatalf("same schedule, different runs:\n%+v\n%+v", a, b)
	}
	if a.Faults.Dropped == 0 || a.Faults.Duplicated == 0 || a.Faults.Delayed == 0 {
		t.Fatalf("schedule injected nothing: %+v", a.Faults)
	}
	other := cfg
	other.Seed = 78
	if c := runFlood(t, other, 60, 8); c.Faults == a.Faults {
		t.Fatalf("independent seeds produced identical fault streams: %+v", c.Faults)
	}
}

func TestSingleKnobSchedules(t *testing.T) {
	drop := runFlood(t, Config{Seed: 5, DropRate: 0.3}, 40, 8).Faults
	if drop.Dropped == 0 || drop.Duplicated != 0 || drop.Delayed != 0 || drop.CrashRounds != 0 {
		t.Fatalf("drop-only schedule: %+v", drop)
	}
	dup := runFlood(t, Config{Seed: 5, DupRate: 0.5}, 40, 8).Faults
	if dup.Duplicated == 0 || dup.Dropped != 0 || dup.Delayed != 0 {
		t.Fatalf("dup-only schedule (window 0 means same-round copies): %+v", dup)
	}
	reorder := runFlood(t, Config{Seed: 5, ReorderRate: 0.5, ReorderWindow: 4}, 40, 8).Faults
	if reorder.Delayed == 0 || reorder.Dropped != 0 || reorder.Duplicated != 0 {
		t.Fatalf("reorder-only schedule: %+v", reorder)
	}
	crash := runFlood(t, Config{Seed: 5, CrashRate: 0.05, MinOutage: 1, MaxOutage: 3}, 40, 8).Faults
	if crash.CrashRounds == 0 || crash.Dropped != 0 || crash.Duplicated != 0 {
		t.Fatalf("crash-only schedule: %+v", crash)
	}
}

func TestDecodeSchedule(t *testing.T) {
	if cfg := DecodeSchedule(nil); !cfg.Quiet() || cfg.Seed != 0 {
		t.Fatalf("empty input must decode to the quiet zero-seed schedule, got %+v", cfg)
	}
	data := []byte{1, 2, 3, 4, 5, 6, 7, 8, 255, 255, 255, 255, 255, 255, 255, 255}
	a, b := DecodeSchedule(data), DecodeSchedule(data)
	if a != b {
		t.Fatalf("decode not deterministic: %+v vs %+v", a, b)
	}
	if a != a.normalized() {
		t.Fatalf("decoded schedule not normalized: %+v", a)
	}
	if a.DropRate > 0.5 || a.CrashRate > 0.05 {
		t.Fatalf("decoded rates exceed caps: %+v", a)
	}
	if a.DropRate == 0 || a.DupRate == 0 || a.ReorderWindow == 0 {
		t.Fatalf("max bytes must enable the knobs: %+v", a)
	}
	// Long inputs only use the prefix; short inputs zero-pad.
	if DecodeSchedule(append(append([]byte(nil), data...), 9, 9, 9)) != a {
		t.Fatalf("decode must ignore trailing bytes")
	}
	if got := DecodeSchedule([]byte{1}); got.Seed != 1 || !got.Quiet() {
		t.Fatalf("short input must zero-pad: %+v", got)
	}
}
