package seq

import (
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/graph/gen"
	"repro/internal/regular/predicates"
	"repro/internal/treedepth"
)

func TestCheckMarkedEdgeKind(t *testing.T) {
	// C4 with one heavy edge: the light spanning tree is minimal.
	g := gen.Cycle(4)
	for _, e := range g.Edges() {
		g.SetEdgeWeight(e.ID, 1)
	}
	heavy, _ := g.EdgeBetween(3, 0)
	g.SetEdgeWeight(heavy, 100)
	run, err := New(g, treedepth.DFSForest(g), predicates.SpanningTree{})
	if err != nil {
		t.Fatal(err)
	}
	light := bitset.New(g.NumEdges())
	for _, e := range g.Edges() {
		if e.ID != heavy {
			light.Add(e.ID)
		}
	}
	ok, err := run.CheckMarked(light, false)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("the light spanning tree is the MST")
	}

	// A valid spanning tree including the heavy edge is not minimal.
	withHeavy := bitset.FromIndices(g.NumEdges(), 0, 1)
	withHeavy.Add(heavy)
	ok, err = run.CheckMarked(withHeavy, false)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("a tree containing the heavy edge is not minimal")
	}

	// Not a spanning tree at all.
	ok, err = run.CheckMarked(bitset.FromIndices(g.NumEdges(), 0), false)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("a single edge does not span C4")
	}
}

func TestEvaluateMarkedEdgeKind(t *testing.T) {
	g := gen.Path(3) // edges 0-1, 1-2
	g.SetEdgeWeight(0, 5)
	g.SetEdgeWeight(1, 9)
	run, err := New(g, treedepth.DFSForest(g), predicates.Matching{})
	if err != nil {
		t.Fatal(err)
	}
	// A single edge is a matching.
	ok, w, err := run.EvaluateMarked(bitset.FromIndices(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !ok || w != 9 {
		t.Fatalf("EvaluateMarked = %v, %d; want true, 9", ok, w)
	}
	// Both edges share vertex 1: not a matching.
	ok, _, err = run.EvaluateMarked(bitset.FromIndices(2, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("two incident edges are not a matching")
	}
}

// Distributed and sequential CheckMarked must agree on random instances and
// random marked sets.
func TestCheckMarkedRandomAgainstDefinition(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for trial := 0; trial < 12; trial++ {
		n := 3 + r.Intn(7)
		g, _ := gen.BoundedTreedepth(n, 2, 0.5, r.Int63())
		for v := 0; v < n; v++ {
			g.SetVertexWeight(v, 1+r.Int63n(4))
		}
		run, err := New(g, treedepth.DFSForest(g), predicates.IndependentSet{})
		if err != nil {
			t.Fatal(err)
		}
		marked := bitset.New(n)
		for v := 0; v < n; v++ {
			if r.Intn(2) == 0 {
				marked.Add(v)
			}
		}
		got, err := run.CheckMarked(marked, true)
		if err != nil {
			t.Fatal(err)
		}
		// Definition: marked is independent and achieves the optimum weight.
		independent := true
		for _, e := range g.Edges() {
			if marked.Contains(e.U) && marked.Contains(e.V) {
				independent = false
			}
		}
		var markedWeight int64
		marked.ForEach(func(v int) { markedWeight += g.VertexWeight(v) })
		opt, err := run.Optimize(true)
		if err != nil {
			t.Fatal(err)
		}
		want := independent && opt.Found && markedWeight == opt.Weight
		if got != want {
			t.Fatalf("trial %d: CheckMarked = %v, want %v (independent=%v weight=%d opt=%d)",
				trial, got, want, independent, markedWeight, opt.Weight)
		}
	}
}

func TestCheckMarkedRejectsClosedPredicate(t *testing.T) {
	g := gen.Path(3)
	run, err := New(g, treedepth.DFSForest(g), predicates.Acyclicity{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := run.EvaluateMarked(bitset.New(3)); err == nil {
		t.Fatal("closed predicates have no marked set to evaluate")
	}
}
