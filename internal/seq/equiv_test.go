package seq

import (
	"testing"

	"repro/internal/bitset"
	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/regular"
	"repro/internal/regular/predicates"
	"repro/internal/treedepth"
)

// The cached dense-table path (New) and the uncached map path (NewUncached)
// must be observationally identical: same verdicts, weights, counts, and
// extracted selections, and the same canonical root table class-for-class
// (RootTableChecksum). These tests sweep every predicate in
// internal/regular/predicates across every applicable mode.

// equivPredicates returns every predicate the package exports, configured for
// the given graph (labels for DominatingSet/SteinerTree are set by equivGraph).
func equivPredicates(t *testing.T) []struct {
	name string
	pred func() regular.Predicate
} {
	t.Helper()
	h := gen.Path(3) // P3 as the H-subgraph pattern
	return []struct {
		name string
		pred func() regular.Predicate
	}{
		{"connectivity", func() regular.Predicate { return predicates.Connectivity{} }},
		{"acyclicity", func() regular.Predicate { return predicates.Acyclicity{} }},
		{"fvs", func() regular.Predicate { return predicates.FeedbackVertexSet{} }},
		{"indset", func() regular.Predicate { return predicates.IndependentSet{} }},
		{"vertexcover", func() regular.Predicate { return predicates.VertexCover{} }},
		{"domset", func() regular.Predicate { return predicates.DominatingSet{} }},
		{"domset_labeled", func() regular.Predicate {
			return predicates.DominatingSet{DominateLabel: equivRedLabel, MemberLabel: equivBlueLabel}
		}},
		{"matching", func() regular.Predicate { return predicates.Matching{} }},
		{"perfect_matching", func() regular.Predicate { return predicates.Matching{Perfect: true} }},
		{"hamiltonian", func() regular.Predicate { return predicates.HamiltonianCycle{} }},
		{"3color", func() regular.Predicate { return predicates.KColorability{K: 3} }},
		{"spanningtree", func() regular.Predicate { return predicates.SpanningTree{} }},
		{"steiner", func() regular.Predicate { return predicates.SteinerTree{} }},
		{"triangles", func() regular.Predicate { return predicates.Triangles{} }},
		{"p3free", func() regular.Predicate {
			p, err := predicates.NewHSubgraph(h)
			if err != nil {
				t.Fatal(err)
			}
			return predicates.Negate(p)
		}},
		{"not_connectivity", func() regular.Predicate { return predicates.Negate(predicates.Connectivity{}) }},
	}
}

const (
	equivRedLabel  = "red"
	equivBlueLabel = "blue"
)

type equivGraph struct {
	name   string
	g      *graph.Graph
	forest *treedepth.Forest
}

// equivGraphs builds small bounded-treedepth instances with weights and the
// vertex labels the labeled predicates consume.
func equivGraphs(t *testing.T) []equivGraph {
	t.Helper()
	var out []equivGraph
	for i, cfg := range []struct {
		n, d      int
		extraProb float64
		seed      int64
	}{
		{12, 3, 0.4, 101},
		{20, 4, 0.25, 102},
		{9, 2, 0.7, 103},
	} {
		g, parent := gen.BoundedTreedepth(cfg.n, cfg.d, cfg.extraProb, cfg.seed)
		gen.AssignRandomWeights(g, 7, cfg.seed+1)
		for v := 0; v < g.NumVertices(); v++ {
			// Deterministic label pattern touching every residue class.
			if v%3 == 0 {
				g.SetVertexLabel(equivRedLabel, v)
			}
			if v%2 == 0 {
				g.SetVertexLabel(equivBlueLabel, v)
			}
			if v%4 == 1 {
				g.SetVertexLabel(predicates.TerminalLabel, v)
			}
		}
		out = append(out, equivGraph{
			name:   []string{"td3", "td4", "td2_dense"}[i],
			g:      g,
			forest: treedepth.NewForest(parent),
		})
	}
	return out
}

func sameBitset(a, b *bitset.Set, n int) bool {
	for i := 0; i < n; i++ {
		av := a != nil && a.Contains(i)
		bv := b != nil && b.Contains(i)
		if av != bv {
			return false
		}
	}
	return true
}

// runnerPair builds a cached and an uncached runner over the same instance.
func runnerPair(t *testing.T, eg equivGraph, pred func() regular.Predicate) (cached, uncached *Runner) {
	t.Helper()
	c, err := New(eg.g, eg.forest, pred())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	u, err := NewUncached(eg.g, eg.forest, pred())
	if err != nil {
		t.Fatalf("NewUncached: %v", err)
	}
	return c, u
}

func checkRootSums(t *testing.T, cached, uncached *Runner) {
	t.Helper()
	cs, us := cached.RootTableChecksum(), uncached.RootTableChecksum()
	if cs != us {
		t.Fatalf("root table checksum diverged: cached %#x, uncached %#x", cs, us)
	}
	if cs == 0 {
		t.Fatal("root table checksum not recorded")
	}
}

func TestCachedMatchesUncachedDecide(t *testing.T) {
	for _, eg := range equivGraphs(t) {
		for _, p := range equivPredicates(t) {
			t.Run(eg.name+"/"+p.name, func(t *testing.T) {
				c, u := runnerPair(t, eg, p.pred)
				got, err := c.Decide()
				if err != nil {
					t.Fatalf("cached Decide: %v", err)
				}
				want, err := u.Decide()
				if err != nil {
					t.Fatalf("uncached Decide: %v", err)
				}
				if got != want {
					t.Fatalf("verdict diverged: cached %v, uncached %v", got, want)
				}
				checkRootSums(t, c, u)
				st := c.CacheStats()
				if st.Classes == 0 {
					t.Fatal("cached run reported zero interned classes")
				}
			})
		}
	}
}

func TestCachedMatchesUncachedOptimize(t *testing.T) {
	for _, eg := range equivGraphs(t) {
		for _, p := range equivPredicates(t) {
			if p.pred().SetKind() == regular.SetNone {
				continue // closed formula: nothing to optimize over
			}
			for _, maximize := range []bool{false, true} {
				dir := map[bool]string{true: "max", false: "min"}[maximize]
				t.Run(eg.name+"/"+p.name+"/"+dir, func(t *testing.T) {
					c, u := runnerPair(t, eg, p.pred)
					got, err := c.Optimize(maximize)
					if err != nil {
						t.Fatalf("cached Optimize: %v", err)
					}
					want, err := u.Optimize(maximize)
					if err != nil {
						t.Fatalf("uncached Optimize: %v", err)
					}
					if got.Found != want.Found || got.Weight != want.Weight {
						t.Fatalf("optimum diverged: cached %+v, uncached %+v", got, want)
					}
					n := eg.g.NumVertices()
					if !sameBitset(got.Vertices, want.Vertices, n) {
						t.Fatalf("vertex selection diverged")
					}
					if !sameBitset(got.Edges, want.Edges, eg.g.NumEdges()) {
						t.Fatalf("edge selection diverged")
					}
					checkRootSums(t, c, u)
				})
			}
		}
	}
}

func TestCachedMatchesUncachedCount(t *testing.T) {
	for _, eg := range equivGraphs(t) {
		for _, p := range equivPredicates(t) {
			if p.pred().SetKind() == regular.SetNone {
				continue // closed formula: nothing to count over
			}
			t.Run(eg.name+"/"+p.name, func(t *testing.T) {
				c, u := runnerPair(t, eg, p.pred)
				got, err := c.Count()
				if err != nil {
					t.Fatalf("cached Count: %v", err)
				}
				want, err := u.Count()
				if err != nil {
					t.Fatalf("uncached Count: %v", err)
				}
				if got != want {
					t.Fatalf("count diverged: cached %d, uncached %d", got, want)
				}
				checkRootSums(t, c, u)
			})
		}
	}
}

// EvaluateMarked must agree on the marked-set evaluation path too (it feeds
// CheckMarked and the distributed verification protocol).
func TestCachedMatchesUncachedEvaluateMarked(t *testing.T) {
	for _, eg := range equivGraphs(t) {
		for _, p := range equivPredicates(t) {
			if p.pred().SetKind() == regular.SetNone {
				continue
			}
			t.Run(eg.name+"/"+p.name, func(t *testing.T) {
				universe := eg.g.NumVertices()
				if p.pred().SetKind() == regular.SetEdge {
					universe = eg.g.NumEdges()
				}
				marked := bitset.New(universe)
				for i := 0; i < universe; i += 2 {
					marked.Add(i)
				}
				c, u := runnerPair(t, eg, p.pred)
				gotOK, gotW, gotErr := c.EvaluateMarked(marked)
				wantOK, wantW, wantErr := u.EvaluateMarked(marked)
				if (gotErr == nil) != (wantErr == nil) {
					t.Fatalf("error divergence: cached %v, uncached %v", gotErr, wantErr)
				}
				if gotErr != nil {
					return
				}
				if gotOK != wantOK || gotW != wantW {
					t.Fatalf("marked evaluation diverged: cached (%v,%d), uncached (%v,%d)",
						gotOK, gotW, wantOK, wantW)
				}
			})
		}
	}
}
