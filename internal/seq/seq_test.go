package seq

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/mso"
	"repro/internal/mso/msolib"
	"repro/internal/regular/predicates"
	"repro/internal/treedepth"
)

func TestNewErrors(t *testing.T) {
	dis, _ := gen.DisjointUnion(gen.Path(2), gen.Path(2))
	f := treedepth.DFSForest(dis)
	if _, err := New(dis, f, predicates.IndependentSet{}); !errors.Is(err, ErrDisconnected) {
		t.Fatalf("err = %v, want ErrDisconnected", err)
	}
	g := gen.Path(3)
	bad := treedepth.NewForest([]int{-1, -1, 1}) // not an elimination tree of P3
	if _, err := New(g, bad, predicates.IndependentSet{}); err == nil {
		t.Fatal("invalid forest should be rejected")
	}
}

func TestIndependentSetOptimizeSmall(t *testing.T) {
	// P5 with unit weights: MaxIS = 3.
	g := gen.Path(5)
	for v := 0; v < 5; v++ {
		g.SetVertexWeight(v, 1)
	}
	r, err := New(g, treedepth.DFSForest(g), predicates.IndependentSet{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Optimize(true)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.Weight != 3 {
		t.Fatalf("MaxIS(P5) = %+v, want 3", res)
	}
	// Extracted set must be an independent set of the right weight.
	verifyIndependent(t, g, res.Vertices, res.Weight)
}

func verifyIndependent(t *testing.T, g *graph.Graph, set *bitset.Set, wantWeight int64) {
	t.Helper()
	var w int64
	set.ForEach(func(v int) { w += g.VertexWeight(v) })
	if w != wantWeight {
		t.Fatalf("extracted set weight %d != reported %d", w, wantWeight)
	}
	for _, e := range g.Edges() {
		if set.Contains(e.U) && set.Contains(e.V) {
			t.Fatalf("extracted set is not independent: edge {%d,%d}", e.U, e.V)
		}
	}
}

// Cross-validate against the naive MSO oracle on random bounded-treedepth
// graphs with random weights.
func TestIndependentSetMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		n := 2 + r.Intn(9)
		g, _ := gen.BoundedTreedepth(n, 2+r.Intn(2), 0.6, r.Int63())
		gen.AssignRandomWeights(g, 20, r.Int63())
		run, err := New(g, treedepth.DFSForest(g), predicates.IndependentSet{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := run.Optimize(true)
		if err != nil {
			t.Fatal(err)
		}
		want, err := mso.NewEvaluator(g).OptimizeSet(msolib.IndependentSet(), msolib.FreeSet, mso.KindVertexSet, true)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Found || got.Weight != want.Weight {
			t.Fatalf("trial %d: DP weight %v/%d != oracle %d", trial, got.Found, got.Weight, want.Weight)
		}
		verifyIndependent(t, g, got.Vertices, got.Weight)
	}
}

func TestIndependentSetCountMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(32))
	for trial := 0; trial < 15; trial++ {
		n := 2 + r.Intn(8)
		g, _ := gen.BoundedTreedepth(n, 2+r.Intn(2), 0.5, r.Int63())
		run, err := New(g, treedepth.DFSForest(g), predicates.IndependentSet{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := run.Count()
		if err != nil {
			t.Fatal(err)
		}
		want, err := mso.NewEvaluator(g).CountAssignments(
			msolib.IndependentSet(), []mso.TypedVar{{Name: msolib.FreeSet, Kind: mso.KindVertexSet}})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d: count %d != oracle %d", trial, got, want)
		}
	}
}

func TestIndependentSetDecide(t *testing.T) {
	// Decision for independent set is trivially true (empty set works); this
	// exercises the decision plumbing end to end.
	g := gen.Complete(4)
	run, err := New(g, treedepth.DFSForest(g), predicates.IndependentSet{})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := run.Decide()
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("exists-independent-set is always true")
	}
	if run.MaxTableSize() == 0 {
		t.Fatal("table size diagnostic should be positive")
	}
}

func TestCheckMarked(t *testing.T) {
	// P4 unit weights: optimal independent sets have weight 2.
	g := gen.Path(4)
	for v := 0; v < 4; v++ {
		g.SetVertexWeight(v, 1)
	}
	run, err := New(g, treedepth.DFSForest(g), predicates.IndependentSet{})
	if err != nil {
		t.Fatal(err)
	}
	// {0,2} is optimal.
	ok, err := run.CheckMarked(bitset.FromIndices(4, 0, 2), true)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("{0,2} is a maximum independent set of P4")
	}
	// {0} is independent but not optimal.
	ok, err = run.CheckMarked(bitset.FromIndices(4, 0), true)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("{0} is not maximum")
	}
	// {0,1} is not independent.
	ok, err = run.CheckMarked(bitset.FromIndices(4, 0, 1), true)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("{0,1} is not independent")
	}
}

func TestEvaluateMarkedWeight(t *testing.T) {
	g := gen.Path(3)
	g.SetVertexWeight(0, 5)
	g.SetVertexWeight(2, 7)
	run, err := New(g, treedepth.DFSForest(g), predicates.IndependentSet{})
	if err != nil {
		t.Fatal(err)
	}
	ok, w, err := run.EvaluateMarked(bitset.FromIndices(3, 0, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !ok || w != 12 {
		t.Fatalf("EvaluateMarked = %v, %d; want true, 12", ok, w)
	}
}
