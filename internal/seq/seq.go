// Package seq implements the sequential Algorithm 1 of the paper: bottom-up
// dynamic programming of homomorphism classes / OPT tables / COUNT tables
// over an elimination-tree derivation, followed by a top-down extraction
// phase for optimization. It serves as the centralized baseline and as the
// reference implementation that the distributed CONGEST protocol mirrors.
package seq

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/bitset"
	"repro/internal/graph"
	"repro/internal/regular"
	"repro/internal/treedepth"
	"repro/internal/wterm"
)

// ErrDisconnected is returned when the input graph is not connected; like
// the CONGEST model, the drivers assume a connected network.
var ErrDisconnected = errors.New("seq: graph must be connected")

// Runner evaluates a regular predicate on a graph along a given elimination
// tree.
type Runner struct {
	g      *graph.Graph
	deriv  *wterm.Derivation
	pred   regular.Predicate
	root   int
	maxTab int // largest table size seen in the last run (for diagnostics)
	maxKey int // largest class key (wire bytes) seen in the last run
}

// New builds a runner. The graph must be connected and the forest must be a
// valid elimination tree of g.
func New(g *graph.Graph, forest *treedepth.Forest, pred regular.Predicate) (*Runner, error) {
	if !g.IsConnected() || g.NumVertices() == 0 {
		return nil, ErrDisconnected
	}
	d, err := wterm.NewDerivation(g, forest)
	if err != nil {
		return nil, err
	}
	roots := forest.Roots()
	if len(roots) != 1 {
		return nil, fmt.Errorf("seq: expected one elimination-tree root, got %d", len(roots))
	}
	return &Runner{g: g, deriv: d, pred: pred, root: roots[0]}, nil
}

// MaxTableSize returns the largest per-node table size observed during the
// most recent run (a proxy for |C|).
func (r *Runner) MaxTableSize() int { return r.maxTab }

// MaxClassKeyBytes returns the largest class wire encoding observed during
// the most recent run (a proxy for log|C|, the per-message bit count).
func (r *Runner) MaxClassKeyBytes() int { return r.maxKey }

func (r *Runner) noteKeys(keys []string) {
	for _, k := range keys {
		if len(k) > r.maxKey {
			r.maxKey = len(k)
		}
	}
}

func (r *Runner) ownerRank(u int) int {
	bag := r.deriv.Bags[u]
	return sort.SearchInts(bag, u)
}

// Decide runs the bottom-up decision phase (Lemma 4.3) and returns whether
// the root's class set contains an accepting class. For closed predicates
// the set is a singleton and this is exactly h(G) being accepting.
func (r *Runner) Decide() (bool, error) {
	children := r.deriv.Forest.Children()
	tables := make([]regular.ClassSet, r.g.NumVertices())
	r.maxTab = 0
	for _, u := range r.deriv.Order {
		base, err := r.deriv.Base(u)
		if err != nil {
			return false, err
		}
		acc, err := regular.BaseClassSet(r.pred, base)
		if err != nil {
			return false, err
		}
		for _, c := range children[u] {
			glue, err := r.deriv.FoldGluing(u, c)
			if err != nil {
				return false, err
			}
			acc, err = regular.FoldDecide(r.pred, glue, acc, tables[c])
			if err != nil {
				return false, err
			}
			tables[c] = nil // free child table
		}
		if len(acc) > r.maxTab {
			r.maxTab = len(acc)
		}
		r.noteKeys(acc.Keys())
		tables[u] = acc
	}
	return regular.AnyAccepting(r.pred, tables[r.root])
}

// OptResult is the outcome of Optimize: the optimal weight and the selected
// set (vertex IDs or edge IDs of the input graph, per the predicate's kind).
type OptResult struct {
	Found    bool
	Weight   int64
	Vertices *bitset.Set // nil unless SetVertex
	Edges    *bitset.Set // nil unless SetEdge
}

type foldStage struct {
	child int
	back  map[string]regular.OptBack
}

// Optimize runs the bottom-up OPT phase (Lemma 4.6) and the top-down
// extraction of Algorithm 1, returning the optimal solution.
func (r *Runner) Optimize(maximize bool) (OptResult, error) {
	n := r.g.NumVertices()
	children := r.deriv.Forest.Children()
	tables := make([]regular.OptTable, n)
	stages := make([][]foldStage, n)
	r.maxTab = 0
	for _, u := range r.deriv.Order {
		base, err := r.deriv.Base(u)
		if err != nil {
			return OptResult{}, err
		}
		acc, err := regular.BaseOptTable(r.pred, base, r.ownerRank(u), maximize)
		if err != nil {
			return OptResult{}, err
		}
		for _, c := range children[u] {
			glue, err := r.deriv.FoldGluing(u, c)
			if err != nil {
				return OptResult{}, err
			}
			var back map[string]regular.OptBack
			acc, back, err = regular.FoldOpt(r.pred, glue, acc, tables[c], maximize)
			if err != nil {
				return OptResult{}, err
			}
			stages[u] = append(stages[u], foldStage{child: c, back: back})
		}
		if len(acc) > r.maxTab {
			r.maxTab = len(acc)
		}
		r.noteKeys(acc.Keys())
		tables[u] = acc
	}
	best, found, err := regular.BestAccepting(r.pred, tables[r.root], maximize)
	if err != nil {
		return OptResult{}, err
	}
	if !found {
		return OptResult{}, nil
	}
	res := OptResult{Found: true, Weight: best.Weight}
	switch r.pred.SetKind() {
	case regular.SetVertex:
		res.Vertices = bitset.New(n)
	case regular.SetEdge:
		res.Edges = bitset.New(r.g.NumEdges())
	}

	// Top-down extraction: assign each node its target class key, walk the
	// fold stages backwards to find the children's keys, and mark the
	// selection owned by each node.
	targetKey := make(map[int]string, n)
	targetKey[r.root] = best.Class.Key()
	// Reverse post-order visits parents before children.
	for i := len(r.deriv.Order) - 1; i >= 0; i-- {
		u := r.deriv.Order[i]
		key, ok := targetKey[u]
		if !ok {
			return OptResult{}, fmt.Errorf("seq: extraction reached node %d without a target class", u)
		}
		entry, ok := tables[u][key]
		if !ok {
			return OptResult{}, fmt.Errorf("seq: node %d has no entry for its target class", u)
		}
		if err := r.markSelection(u, entry.Class, &res); err != nil {
			return OptResult{}, err
		}
		for s := len(stages[u]) - 1; s >= 0; s-- {
			st := stages[u][s]
			b, ok := st.back[key]
			if !ok {
				return OptResult{}, fmt.Errorf("seq: node %d stage %d missing back-pointer", u, s)
			}
			targetKey[st.child] = b.ChildKey
			key = b.AccKey
		}
	}
	return res, nil
}

// markSelection records the elements owned by node u that the class declares
// selected: u itself (vertex kind) or u's owned edges (edge kind).
func (r *Runner) markSelection(u int, c regular.Class, res *OptResult) error {
	sel, err := r.pred.Selection(c)
	if err != nil {
		return err
	}
	bag := r.deriv.Bags[u]
	rank := r.ownerRank(u)
	switch r.pred.SetKind() {
	case regular.SetVertex:
		if sel.VertexMask&(1<<uint(rank)) != 0 {
			res.Vertices.Add(u)
		}
	case regular.SetEdge:
		for _, pair := range sel.EdgePairs {
			// Only edges owned by u (incident to u's rank) are marked here;
			// the class of G_u can only contain owned pairs anyway.
			a, b := bag[pair[0]], bag[pair[1]]
			id, ok := r.g.EdgeBetween(a, b)
			if !ok {
				return fmt.Errorf("seq: class selects non-edge {%d,%d}", a, b)
			}
			res.Edges.Add(id)
		}
	}
	return nil
}

// Count runs the bottom-up COUNT phase (Section 6) and returns the number of
// satisfying assignments of the free set variable.
func (r *Runner) Count() (int64, error) {
	children := r.deriv.Forest.Children()
	tables := make([]regular.CountTable, r.g.NumVertices())
	r.maxTab = 0
	for _, u := range r.deriv.Order {
		base, err := r.deriv.Base(u)
		if err != nil {
			return 0, err
		}
		acc, err := regular.BaseCountTable(r.pred, base)
		if err != nil {
			return 0, err
		}
		for _, c := range children[u] {
			glue, err := r.deriv.FoldGluing(u, c)
			if err != nil {
				return 0, err
			}
			acc, err = regular.FoldCount(r.pred, glue, acc, tables[c])
			if err != nil {
				return 0, err
			}
			tables[c] = nil
		}
		if len(acc) > r.maxTab {
			r.maxTab = len(acc)
		}
		r.noteKeys(acc.Keys())
		tables[u] = acc
	}
	return regular.TotalAccepting(r.pred, tables[r.root])
}

// CheckMarked implements the optmarked problem of Section 6: given the
// marked set (vertex IDs or edge IDs matching the predicate's kind), decide
// whether it satisfies the predicate AND achieves the optimal weight.
func (r *Runner) CheckMarked(marked *bitset.Set, maximize bool) (bool, error) {
	opt, err := r.Optimize(maximize)
	if err != nil {
		return false, err
	}
	satisfies, weight, err := r.EvaluateMarked(marked)
	if err != nil {
		return false, err
	}
	if !satisfies {
		return false, nil
	}
	if !opt.Found {
		return false, nil
	}
	return weight == opt.Weight, nil
}

// EvaluateMarked decides whether the marked set satisfies the predicate (the
// closed formula ψ of Section 6) and returns its total weight.
func (r *Runner) EvaluateMarked(marked *bitset.Set) (bool, int64, error) {
	children := r.deriv.Forest.Children()
	tables := make([]regular.ClassSet, r.g.NumVertices())
	var weight int64
	for _, u := range r.deriv.Order {
		base, err := r.deriv.Base(u)
		if err != nil {
			return false, 0, err
		}
		classes, err := r.pred.HomBase(base)
		if err != nil {
			return false, 0, err
		}
		want, err := r.markedBaseSelection(u, marked)
		if err != nil {
			return false, 0, err
		}
		acc := make(regular.ClassSet)
		for _, bc := range classes {
			if r.selectionMatchesOwned(u, bc.Sel, want) {
				acc[bc.Class.Key()] = bc.Class
			}
		}
		for _, c := range children[u] {
			glue, err := r.deriv.FoldGluing(u, c)
			if err != nil {
				return false, 0, err
			}
			acc, err = regular.FoldDecide(r.pred, glue, acc, tables[c])
			if err != nil {
				return false, 0, err
			}
			tables[c] = nil
		}
		tables[u] = acc
	}
	// Total marked weight under edge-owned accounting.
	switch r.pred.SetKind() {
	case regular.SetVertex:
		marked.ForEach(func(v int) { weight += r.g.VertexWeight(v) })
	case regular.SetEdge:
		marked.ForEach(func(e int) { weight += r.g.EdgeWeight(e) })
	}
	ok, err := regular.AnyAccepting(r.pred, tables[r.root])
	return ok, weight, err
}

// markedBaseSelection computes the selection the marked set induces on the
// elements owned by node u.
func (r *Runner) markedBaseSelection(u int, marked *bitset.Set) (regular.Selection, error) {
	bag := r.deriv.Bags[u]
	rank := r.ownerRank(u)
	var sel regular.Selection
	switch r.pred.SetKind() {
	case regular.SetVertex:
		if marked.Contains(u) {
			sel.VertexMask = 1 << uint(rank)
		}
	case regular.SetEdge:
		for i, v := range bag {
			if v == u {
				continue
			}
			if id, ok := r.g.EdgeBetween(u, v); ok && marked.Contains(id) {
				lo, hi := rank, i
				if lo > hi {
					lo, hi = hi, lo
				}
				sel.EdgePairs = append(sel.EdgePairs, [2]int{lo, hi})
			}
		}
		sel.EdgePairs = regular.NormalizeEdgePairs(sel.EdgePairs)
	case regular.SetNone:
		return regular.Selection{}, fmt.Errorf("seq: CheckMarked needs a predicate with a free set variable")
	}
	return sel, nil
}

// selectionMatchesOwned compares a base class's selection with the marked
// selection, restricted to the elements owned by u: the owner's bit for
// vertex predicates, all owned edge pairs for edge predicates.
func (r *Runner) selectionMatchesOwned(u int, got, want regular.Selection) bool {
	switch r.pred.SetKind() {
	case regular.SetVertex:
		rank := r.ownerRank(u)
		bit := uint64(1) << uint(rank)
		return got.VertexMask&bit == want.VertexMask&bit
	case regular.SetEdge:
		a := regular.NormalizeEdgePairs(append([][2]int(nil), got.EdgePairs...))
		b := regular.NormalizeEdgePairs(append([][2]int(nil), want.EdgePairs...))
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	default:
		return false
	}
}
