// Package seq implements the sequential Algorithm 1 of the paper: bottom-up
// dynamic programming of homomorphism classes / OPT tables / COUNT tables
// over an elimination-tree derivation, followed by a top-down extraction
// phase for optimization. It serves as the centralized baseline and as the
// reference implementation that the distributed CONGEST protocol mirrors.
package seq

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"

	"repro/internal/bitset"
	"repro/internal/graph"
	"repro/internal/regular"
	"repro/internal/treedepth"
	"repro/internal/wterm"
)

// ErrDisconnected is returned when the input graph is not connected; like
// the CONGEST model, the drivers assume a connected network.
var ErrDisconnected = errors.New("seq: graph must be connected")

// Runner evaluates a regular predicate on a graph along a given elimination
// tree.
type Runner struct {
	g     *graph.Graph
	deriv *wterm.Derivation
	pred  regular.Predicate
	root  int
	// cache is the interned, memoized DP algebra shared across the whole
	// bottom-up pass (nil for the uncached reference runner). Every node's
	// fold reuses the same ⊙_f memo, so recurring bag shapes pay for each
	// distinct (gluing, class, class) composition exactly once.
	cache   *regular.Cached
	maxTab  int    // largest table size seen in the last run (for diagnostics)
	maxKey  int    // largest class key (wire bytes) seen in the last run
	rootSum uint64 // digest of the last run's root table (class keys + values)
}

// New builds a runner using the cached dense DP algebra. The graph must be
// connected and the forest must be a valid elimination tree of g.
func New(g *graph.Graph, forest *treedepth.Forest, pred regular.Predicate) (*Runner, error) {
	r, err := NewUncached(g, forest, pred)
	if err != nil {
		return nil, err
	}
	r.cache = regular.NewCached(pred)
	return r, nil
}

// NewWithCache builds a runner that evaluates through an existing cached
// algebra (for example a handle of a process-lifetime regular.Shared). The
// predicate is taken from the cache; results are bit-identical to New.
func NewWithCache(g *graph.Graph, forest *treedepth.Forest, cache *regular.Cached) (*Runner, error) {
	if cache == nil {
		return nil, errors.New("seq: NewWithCache requires a non-nil cache")
	}
	r, err := NewUncached(g, forest, cache.Predicate())
	if err != nil {
		return nil, err
	}
	r.cache = cache
	return r, nil
}

// NewUncached builds a runner on the original map-based tables with no
// interning or memoization — the reference path cached runs are validated
// against.
func NewUncached(g *graph.Graph, forest *treedepth.Forest, pred regular.Predicate) (*Runner, error) {
	if !g.IsConnected() || g.NumVertices() == 0 {
		return nil, ErrDisconnected
	}
	d, err := wterm.NewDerivation(g, forest)
	if err != nil {
		return nil, err
	}
	roots := forest.Roots()
	if len(roots) != 1 {
		return nil, fmt.Errorf("seq: expected one elimination-tree root, got %d", len(roots))
	}
	return &Runner{g: g, deriv: d, pred: pred, root: roots[0]}, nil
}

// CacheStats returns the cache counters accumulated so far (zero for an
// uncached runner).
func (r *Runner) CacheStats() regular.CacheStats {
	if r.cache == nil {
		return regular.CacheStats{}
	}
	return r.cache.Stats()
}

// MaxTableSize returns the largest per-node table size observed during the
// most recent run (a proxy for |C|).
func (r *Runner) MaxTableSize() int { return r.maxTab }

// MaxClassKeyBytes returns the largest class wire encoding observed during
// the most recent run (a proxy for log|C|, the per-message bit count).
func (r *Runner) MaxClassKeyBytes() int { return r.maxKey }

// RootTableChecksum digests the most recent run's root table: every (class
// key, value) pair in canonical order, FNV-64a. Cached and uncached runs of
// the same problem must agree class-for-class, so equal checksums certify
// table-level (not just verdict-level) equivalence.
func (r *Runner) RootTableChecksum() uint64 { return r.rootSum }

// digestRoot hashes canonical (key, value) pairs into rootSum.
func (r *Runner) digestRoot(keys []string, value func(i int) int64) {
	h := fnv.New64a()
	var buf [8]byte
	for i, k := range keys {
		h.Write([]byte(k))
		v := uint64(value(i))
		for j := range buf {
			buf[j] = byte(v >> uint(8*j))
		}
		h.Write(buf[:])
	}
	r.rootSum = h.Sum64()
}

// digestRootDense is digestRoot over an interned ID list.
func (r *Runner) digestRootDense(ids []regular.ClassID, value func(i int) int64) {
	h := fnv.New64a()
	var buf [8]byte
	for i, id := range ids {
		h.Write([]byte(r.cache.KeyOf(id)))
		v := uint64(value(i))
		for j := range buf {
			buf[j] = byte(v >> uint(8*j))
		}
		h.Write(buf[:])
	}
	r.rootSum = h.Sum64()
}

func (r *Runner) noteKeys(keys []string) {
	for _, k := range keys {
		if len(k) > r.maxKey {
			r.maxKey = len(k)
		}
	}
}

func (r *Runner) noteIDs(ids []regular.ClassID) {
	if len(ids) > r.maxTab {
		r.maxTab = len(ids)
	}
	for _, id := range ids {
		if n := len(r.cache.KeyOf(id)); n > r.maxKey {
			r.maxKey = n
		}
	}
}

func (r *Runner) ownerRank(u int) int {
	bag := r.deriv.Bags[u]
	return sort.SearchInts(bag, u)
}

// Decide runs the bottom-up decision phase (Lemma 4.3) and returns whether
// the root's class set contains an accepting class. For closed predicates
// the set is a singleton and this is exactly h(G) being accepting.
func (r *Runner) Decide() (bool, error) {
	if r.cache != nil {
		return r.decideDense()
	}
	children := r.deriv.Forest.Children()
	tables := make([]regular.ClassSet, r.g.NumVertices())
	r.maxTab = 0
	for _, u := range r.deriv.Order {
		base, err := r.deriv.Base(u)
		if err != nil {
			return false, err
		}
		acc, err := regular.BaseClassSet(r.pred, base)
		if err != nil {
			return false, err
		}
		for _, c := range children[u] {
			glue, err := r.deriv.FoldGluing(u, c)
			if err != nil {
				return false, err
			}
			acc, err = regular.FoldDecide(r.pred, glue, acc, tables[c])
			if err != nil {
				return false, err
			}
			tables[c] = nil // free child table
		}
		if len(acc) > r.maxTab {
			r.maxTab = len(acc)
		}
		r.noteKeys(acc.Keys())
		tables[u] = acc
	}
	r.digestRoot(tables[r.root].Keys(), func(int) int64 { return 0 })
	return regular.AnyAccepting(r.pred, tables[r.root])
}

// decideDense is Decide on the interned dense algebra.
func (r *Runner) decideDense() (bool, error) {
	children := r.deriv.Forest.Children()
	tables := make([]regular.DenseSet, r.g.NumVertices())
	r.maxTab = 0
	for _, u := range r.deriv.Order {
		base, err := r.deriv.Base(u)
		if err != nil {
			return false, err
		}
		acc, err := r.cache.BaseDenseSet(base)
		if err != nil {
			return false, err
		}
		for _, c := range children[u] {
			glue, err := r.deriv.FoldGluing(u, c)
			if err != nil {
				return false, err
			}
			acc, err = r.cache.FoldDecideDense(r.cache.InternGluing(glue), acc, tables[c])
			if err != nil {
				return false, err
			}
			tables[c] = regular.DenseSet{} // free child table
		}
		r.noteIDs(acc.IDs)
		tables[u] = acc
	}
	r.digestRootDense(tables[r.root].IDs, func(int) int64 { return 0 })
	return r.cache.AnyAcceptingDense(tables[r.root])
}

// OptResult is the outcome of Optimize: the optimal weight and the selected
// set (vertex IDs or edge IDs of the input graph, per the predicate's kind).
type OptResult struct {
	Found    bool
	Weight   int64
	Vertices *bitset.Set // nil unless SetVertex
	Edges    *bitset.Set // nil unless SetEdge
}

type foldStage struct {
	child int
	back  map[string]regular.OptBack
}

// Optimize runs the bottom-up OPT phase (Lemma 4.6) and the top-down
// extraction of Algorithm 1, returning the optimal solution.
func (r *Runner) Optimize(maximize bool) (OptResult, error) {
	if r.cache != nil {
		return r.optimizeDense(maximize)
	}
	n := r.g.NumVertices()
	children := r.deriv.Forest.Children()
	tables := make([]regular.OptTable, n)
	stages := make([][]foldStage, n)
	r.maxTab = 0
	for _, u := range r.deriv.Order {
		base, err := r.deriv.Base(u)
		if err != nil {
			return OptResult{}, err
		}
		acc, err := regular.BaseOptTable(r.pred, base, r.ownerRank(u), maximize)
		if err != nil {
			return OptResult{}, err
		}
		for _, c := range children[u] {
			glue, err := r.deriv.FoldGluing(u, c)
			if err != nil {
				return OptResult{}, err
			}
			var back map[string]regular.OptBack
			acc, back, err = regular.FoldOpt(r.pred, glue, acc, tables[c], maximize)
			if err != nil {
				return OptResult{}, err
			}
			stages[u] = append(stages[u], foldStage{child: c, back: back})
		}
		if len(acc) > r.maxTab {
			r.maxTab = len(acc)
		}
		r.noteKeys(acc.Keys())
		tables[u] = acc
	}
	rootKeys := tables[r.root].Keys()
	r.digestRoot(rootKeys, func(i int) int64 { return tables[r.root][rootKeys[i]].Weight })
	best, found, err := regular.BestAccepting(r.pred, tables[r.root], maximize)
	if err != nil {
		return OptResult{}, err
	}
	if !found {
		return OptResult{}, nil
	}
	res := OptResult{Found: true, Weight: best.Weight}
	switch r.pred.SetKind() {
	case regular.SetVertex:
		res.Vertices = bitset.New(n)
	case regular.SetEdge:
		res.Edges = bitset.New(r.g.NumEdges())
	}

	// Top-down extraction: assign each node its target class key, walk the
	// fold stages backwards to find the children's keys, and mark the
	// selection owned by each node.
	targetKey := make(map[int]string, n)
	targetKey[r.root] = best.Class.Key()
	// Reverse post-order visits parents before children.
	for i := len(r.deriv.Order) - 1; i >= 0; i-- {
		u := r.deriv.Order[i]
		key, ok := targetKey[u]
		if !ok {
			return OptResult{}, fmt.Errorf("seq: extraction reached node %d without a target class", u)
		}
		entry, ok := tables[u][key]
		if !ok {
			return OptResult{}, fmt.Errorf("seq: node %d has no entry for its target class", u)
		}
		if err := r.markSelection(u, entry.Class, &res); err != nil {
			return OptResult{}, err
		}
		for s := len(stages[u]) - 1; s >= 0; s-- {
			st := stages[u][s]
			b, ok := st.back[key]
			if !ok {
				return OptResult{}, fmt.Errorf("seq: node %d stage %d missing back-pointer", u, s)
			}
			targetKey[st.child] = b.ChildKey
			key = b.AccKey
		}
	}
	return res, nil
}

type denseStage struct {
	child int
	back  map[regular.ClassID]regular.DenseBack
}

// optimizeDense is Optimize on the interned dense algebra: ClassID-based
// tables, back-pointers, and top-down extraction, with identical tie-breaking
// to the map path (canonical iteration order, first strictly-better wins).
func (r *Runner) optimizeDense(maximize bool) (OptResult, error) {
	n := r.g.NumVertices()
	children := r.deriv.Forest.Children()
	tables := make([]regular.DenseOpt, n)
	stages := make([][]denseStage, n)
	r.maxTab = 0
	for _, u := range r.deriv.Order {
		base, err := r.deriv.Base(u)
		if err != nil {
			return OptResult{}, err
		}
		acc, err := r.cache.BaseDenseOpt(base, r.ownerRank(u), maximize)
		if err != nil {
			return OptResult{}, err
		}
		for _, c := range children[u] {
			glue, err := r.deriv.FoldGluing(u, c)
			if err != nil {
				return OptResult{}, err
			}
			var back map[regular.ClassID]regular.DenseBack
			acc, back, err = r.cache.FoldOptDense(r.cache.InternGluing(glue), acc, tables[c], maximize)
			if err != nil {
				return OptResult{}, err
			}
			stages[u] = append(stages[u], denseStage{child: c, back: back})
		}
		r.noteIDs(acc.IDs)
		tables[u] = acc
	}
	r.digestRootDense(tables[r.root].IDs, func(i int) int64 { return tables[r.root].Weights[i] })
	bestID, bestW, found, err := r.cache.BestAcceptingDense(tables[r.root], maximize)
	if err != nil {
		return OptResult{}, err
	}
	if !found {
		return OptResult{}, nil
	}
	res := OptResult{Found: true, Weight: bestW}
	switch r.pred.SetKind() {
	case regular.SetVertex:
		res.Vertices = bitset.New(n)
	case regular.SetEdge:
		res.Edges = bitset.New(r.g.NumEdges())
	}

	targetID := make(map[int]regular.ClassID, n)
	targetID[r.root] = bestID
	for i := len(r.deriv.Order) - 1; i >= 0; i-- {
		u := r.deriv.Order[i]
		id, ok := targetID[u]
		if !ok {
			return OptResult{}, fmt.Errorf("seq: extraction reached node %d without a target class", u)
		}
		if !denseOptHas(tables[u], id) {
			return OptResult{}, fmt.Errorf("seq: node %d has no entry for its target class", u)
		}
		sel, err := r.cache.SelectionID(id)
		if err != nil {
			return OptResult{}, err
		}
		if err := r.markSelectionSel(u, sel, &res); err != nil {
			return OptResult{}, err
		}
		for s := len(stages[u]) - 1; s >= 0; s-- {
			st := stages[u][s]
			b, ok := st.back[id]
			if !ok {
				return OptResult{}, fmt.Errorf("seq: node %d stage %d missing back-pointer", u, s)
			}
			targetID[st.child] = b.Child
			id = b.Acc
		}
	}
	return res, nil
}

// denseOptHas reports whether the table carries an entry for id.
func denseOptHas(t regular.DenseOpt, id regular.ClassID) bool {
	for _, x := range t.IDs {
		if x == id {
			return true
		}
	}
	return false
}

// markSelection records the elements owned by node u that the class declares
// selected: u itself (vertex kind) or u's owned edges (edge kind).
func (r *Runner) markSelection(u int, c regular.Class, res *OptResult) error {
	sel, err := r.pred.Selection(c)
	if err != nil {
		return err
	}
	return r.markSelectionSel(u, sel, res)
}

// markSelectionSel is markSelection on an already-decoded selection.
func (r *Runner) markSelectionSel(u int, sel regular.Selection, res *OptResult) error {
	bag := r.deriv.Bags[u]
	rank := r.ownerRank(u)
	switch r.pred.SetKind() {
	case regular.SetVertex:
		if sel.VertexMask&(1<<uint(rank)) != 0 {
			res.Vertices.Add(u)
		}
	case regular.SetEdge:
		for _, pair := range sel.EdgePairs {
			// Only edges owned by u (incident to u's rank) are marked here;
			// the class of G_u can only contain owned pairs anyway.
			a, b := bag[pair[0]], bag[pair[1]]
			id, ok := r.g.EdgeBetween(a, b)
			if !ok {
				return fmt.Errorf("seq: class selects non-edge {%d,%d}", a, b)
			}
			res.Edges.Add(id)
		}
	}
	return nil
}

// Count runs the bottom-up COUNT phase (Section 6) and returns the number of
// satisfying assignments of the free set variable.
func (r *Runner) Count() (int64, error) {
	if r.cache != nil {
		return r.countDense()
	}
	children := r.deriv.Forest.Children()
	tables := make([]regular.CountTable, r.g.NumVertices())
	r.maxTab = 0
	for _, u := range r.deriv.Order {
		base, err := r.deriv.Base(u)
		if err != nil {
			return 0, err
		}
		acc, err := regular.BaseCountTable(r.pred, base)
		if err != nil {
			return 0, err
		}
		for _, c := range children[u] {
			glue, err := r.deriv.FoldGluing(u, c)
			if err != nil {
				return 0, err
			}
			acc, err = regular.FoldCount(r.pred, glue, acc, tables[c])
			if err != nil {
				return 0, err
			}
			tables[c] = nil
		}
		if len(acc) > r.maxTab {
			r.maxTab = len(acc)
		}
		r.noteKeys(acc.Keys())
		tables[u] = acc
	}
	rootKeys := tables[r.root].Keys()
	r.digestRoot(rootKeys, func(i int) int64 { return tables[r.root][rootKeys[i]].Count })
	return regular.TotalAccepting(r.pred, tables[r.root])
}

// countDense is Count on the interned dense algebra.
func (r *Runner) countDense() (int64, error) {
	children := r.deriv.Forest.Children()
	tables := make([]regular.DenseCount, r.g.NumVertices())
	r.maxTab = 0
	for _, u := range r.deriv.Order {
		base, err := r.deriv.Base(u)
		if err != nil {
			return 0, err
		}
		acc, err := r.cache.BaseDenseCount(base)
		if err != nil {
			return 0, err
		}
		for _, c := range children[u] {
			glue, err := r.deriv.FoldGluing(u, c)
			if err != nil {
				return 0, err
			}
			acc, err = r.cache.FoldCountDense(r.cache.InternGluing(glue), acc, tables[c])
			if err != nil {
				return 0, err
			}
			tables[c] = regular.DenseCount{}
		}
		r.noteIDs(acc.IDs)
		tables[u] = acc
	}
	r.digestRootDense(tables[r.root].IDs, func(i int) int64 { return tables[r.root].Counts[i] })
	return r.cache.TotalAcceptingDense(tables[r.root])
}

// CheckMarked implements the optmarked problem of Section 6: given the
// marked set (vertex IDs or edge IDs matching the predicate's kind), decide
// whether it satisfies the predicate AND achieves the optimal weight.
func (r *Runner) CheckMarked(marked *bitset.Set, maximize bool) (bool, error) {
	opt, err := r.Optimize(maximize)
	if err != nil {
		return false, err
	}
	satisfies, weight, err := r.EvaluateMarked(marked)
	if err != nil {
		return false, err
	}
	if !satisfies {
		return false, nil
	}
	if !opt.Found {
		return false, nil
	}
	return weight == opt.Weight, nil
}

// EvaluateMarked decides whether the marked set satisfies the predicate (the
// closed formula ψ of Section 6) and returns its total weight.
func (r *Runner) EvaluateMarked(marked *bitset.Set) (bool, int64, error) {
	if r.cache != nil {
		return r.evaluateMarkedDense(marked)
	}
	children := r.deriv.Forest.Children()
	tables := make([]regular.ClassSet, r.g.NumVertices())
	var weight int64
	for _, u := range r.deriv.Order {
		base, err := r.deriv.Base(u)
		if err != nil {
			return false, 0, err
		}
		classes, err := r.pred.HomBase(base)
		if err != nil {
			return false, 0, err
		}
		want, err := r.markedBaseSelection(u, marked)
		if err != nil {
			return false, 0, err
		}
		acc := make(regular.ClassSet)
		for _, bc := range classes {
			if r.selectionMatchesOwned(u, bc.Sel, want) {
				acc[bc.Class.Key()] = bc.Class
			}
		}
		for _, c := range children[u] {
			glue, err := r.deriv.FoldGluing(u, c)
			if err != nil {
				return false, 0, err
			}
			acc, err = regular.FoldDecide(r.pred, glue, acc, tables[c])
			if err != nil {
				return false, 0, err
			}
			tables[c] = nil
		}
		tables[u] = acc
	}
	// Total marked weight under edge-owned accounting.
	switch r.pred.SetKind() {
	case regular.SetVertex:
		marked.ForEach(func(v int) { weight += r.g.VertexWeight(v) })
	case regular.SetEdge:
		marked.ForEach(func(e int) { weight += r.g.EdgeWeight(e) })
	}
	ok, err := regular.AnyAccepting(r.pred, tables[r.root])
	return ok, weight, err
}

// evaluateMarkedDense is EvaluateMarked on the interned dense algebra.
func (r *Runner) evaluateMarkedDense(marked *bitset.Set) (bool, int64, error) {
	children := r.deriv.Forest.Children()
	tables := make([]regular.DenseSet, r.g.NumVertices())
	var weight int64
	for _, u := range r.deriv.Order {
		base, err := r.deriv.Base(u)
		if err != nil {
			return false, 0, err
		}
		classes, err := r.pred.HomBase(base)
		if err != nil {
			return false, 0, err
		}
		want, err := r.markedBaseSelection(u, marked)
		if err != nil {
			return false, 0, err
		}
		// Intern the filtered base classes through the map form to dedupe and
		// establish canonical order in one step.
		filtered := make(regular.ClassSet)
		for _, bc := range classes {
			if r.selectionMatchesOwned(u, bc.Sel, want) {
				filtered[bc.Class.Key()] = bc.Class
			}
		}
		acc := r.cache.InternClassSet(filtered)
		for _, c := range children[u] {
			glue, err := r.deriv.FoldGluing(u, c)
			if err != nil {
				return false, 0, err
			}
			acc, err = r.cache.FoldDecideDense(r.cache.InternGluing(glue), acc, tables[c])
			if err != nil {
				return false, 0, err
			}
			tables[c] = regular.DenseSet{}
		}
		tables[u] = acc
	}
	switch r.pred.SetKind() {
	case regular.SetVertex:
		marked.ForEach(func(v int) { weight += r.g.VertexWeight(v) })
	case regular.SetEdge:
		marked.ForEach(func(e int) { weight += r.g.EdgeWeight(e) })
	}
	ok, err := r.cache.AnyAcceptingDense(tables[r.root])
	return ok, weight, err
}

// markedBaseSelection computes the selection the marked set induces on the
// elements owned by node u.
func (r *Runner) markedBaseSelection(u int, marked *bitset.Set) (regular.Selection, error) {
	bag := r.deriv.Bags[u]
	rank := r.ownerRank(u)
	var sel regular.Selection
	switch r.pred.SetKind() {
	case regular.SetVertex:
		if marked.Contains(u) {
			sel.VertexMask = 1 << uint(rank)
		}
	case regular.SetEdge:
		for i, v := range bag {
			if v == u {
				continue
			}
			if id, ok := r.g.EdgeBetween(u, v); ok && marked.Contains(id) {
				lo, hi := rank, i
				if lo > hi {
					lo, hi = hi, lo
				}
				sel.EdgePairs = append(sel.EdgePairs, [2]int{lo, hi})
			}
		}
		sel.EdgePairs = regular.NormalizeEdgePairs(sel.EdgePairs)
	case regular.SetNone:
		return regular.Selection{}, fmt.Errorf("seq: CheckMarked needs a predicate with a free set variable")
	}
	return sel, nil
}

// selectionMatchesOwned compares a base class's selection with the marked
// selection, restricted to the elements owned by u: the owner's bit for
// vertex predicates, all owned edge pairs for edge predicates.
func (r *Runner) selectionMatchesOwned(u int, got, want regular.Selection) bool {
	switch r.pred.SetKind() {
	case regular.SetVertex:
		rank := r.ownerRank(u)
		bit := uint64(1) << uint(rank)
		return got.VertexMask&bit == want.VertexMask&bit
	case regular.SetEdge:
		a := regular.NormalizeEdgePairs(append([][2]int(nil), got.EdgePairs...))
		b := regular.NormalizeEdgePairs(append([][2]int(nil), want.EdgePairs...))
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	default:
		return false
	}
}
