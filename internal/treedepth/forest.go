// Package treedepth implements elimination forests, exact and heuristic
// treedepth algorithms, and the canonical tree decomposition of Lemma 2.4 of
// the paper. These are the sequential counterparts of the distributed
// constructions in internal/protocols, used as oracles and building blocks.
package treedepth

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/graph"
)

// ErrTooLarge is returned by the exact algorithm for graphs beyond its
// exhaustive-search limit.
var ErrTooLarge = errors.New("treedepth: graph too large for exact computation")

// Forest is a rooted spanning forest over the vertices of a graph, given by a
// parent array with parent[root] = -1. A Forest is an elimination forest of G
// when every edge of G connects a vertex with one of its ancestors.
type Forest struct {
	Parent []int
}

// NewForest wraps a parent array (copied).
func NewForest(parent []int) *Forest {
	return &Forest{Parent: append([]int(nil), parent...)}
}

// NumVertices returns the number of vertices in the forest.
func (f *Forest) NumVertices() int { return len(f.Parent) }

// Roots returns the roots in increasing order.
func (f *Forest) Roots() []int {
	var roots []int
	for v, p := range f.Parent {
		if p < 0 {
			roots = append(roots, v)
		}
	}
	return roots
}

// Children returns, for each vertex, its children sorted increasingly.
func (f *Forest) Children() [][]int {
	ch := make([][]int, len(f.Parent))
	for v, p := range f.Parent {
		if p >= 0 {
			ch[p] = append(ch[p], v)
		}
	}
	for _, c := range ch {
		sort.Ints(c)
	}
	return ch
}

// DepthOf returns the depth of v counted in vertices (roots have depth 1).
func (f *Forest) DepthOf(v int) int {
	d := 1
	for f.Parent[v] >= 0 {
		v = f.Parent[v]
		d++
	}
	return d
}

// Depth returns the depth of the forest: the maximum number of vertices on a
// root-to-leaf path (0 for an empty forest).
func (f *Forest) Depth() int {
	depth := make([]int, len(f.Parent))
	max := 0
	var compute func(v int) int
	compute = func(v int) int {
		if depth[v] > 0 {
			return depth[v]
		}
		if f.Parent[v] < 0 {
			depth[v] = 1
		} else {
			depth[v] = compute(f.Parent[v]) + 1
		}
		return depth[v]
	}
	for v := range f.Parent {
		if d := compute(v); d > max {
			max = d
		}
	}
	return max
}

// IsAncestor reports whether a is an ancestor of v (or equal to v).
func (f *Forest) IsAncestor(a, v int) bool {
	for v >= 0 {
		if v == a {
			return true
		}
		v = f.Parent[v]
	}
	return false
}

// PathToRoot returns v, parent(v), ..., root — i.e. v and all its ancestors.
func (f *Forest) PathToRoot(v int) []int {
	var path []int
	for v >= 0 {
		path = append(path, v)
		v = f.Parent[v]
	}
	return path
}

// Validate checks structural sanity: parents in range, no cycles.
func (f *Forest) Validate() error {
	n := len(f.Parent)
	for v, p := range f.Parent {
		if p >= n || p == v {
			return fmt.Errorf("treedepth: invalid parent %d of vertex %d", p, v)
		}
	}
	// Cycle detection by walking to root with a step budget.
	for v := range f.Parent {
		steps := 0
		for u := v; u >= 0; u = f.Parent[u] {
			if steps++; steps > n {
				return fmt.Errorf("treedepth: cycle through vertex %d", v)
			}
		}
	}
	return nil
}

// VerifyElimination checks that f is an elimination forest of g: structurally
// valid, same vertex count, and every edge of g joins a vertex to one of its
// ancestors. Additionally, vertices in different trees must be in different
// components (implied by the edge condition).
func (f *Forest) VerifyElimination(g *graph.Graph) error {
	if len(f.Parent) != g.NumVertices() {
		return fmt.Errorf("treedepth: forest has %d vertices, graph has %d", len(f.Parent), g.NumVertices())
	}
	if err := f.Validate(); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if !f.IsAncestor(e.U, e.V) && !f.IsAncestor(e.V, e.U) {
			return fmt.Errorf("treedepth: edge {%d,%d} is not ancestor-descendant", e.U, e.V)
		}
	}
	return nil
}

// ValidateForest checks that f is an elimination forest of g witnessing
// treedepth exactly td: structurally valid, every edge of g joins a vertex
// to one of its ancestors, and the forest depth equals the claimed td. It is
// the reusable acceptance check for anything that produces a (td, forest)
// pair — the exact solvers, DFSForest (with td = f.Depth()), and external
// decompositions read from disk.
func ValidateForest(g *graph.Graph, f *Forest, td int) error {
	if err := f.VerifyElimination(g); err != nil {
		return err
	}
	if d := f.Depth(); d != td {
		return fmt.Errorf("treedepth: forest depth %d does not match claimed treedepth %d", d, td)
	}
	return nil
}

// SubtreeVertices returns, for every vertex u, the sorted vertices of the
// subtree rooted at u (including u).
func (f *Forest) SubtreeVertices() [][]int {
	n := len(f.Parent)
	out := make([][]int, n)
	ch := f.Children()
	var collect func(u int) []int
	collect = func(u int) []int {
		if out[u] != nil {
			return out[u]
		}
		vs := []int{u}
		for _, c := range ch[u] {
			vs = append(vs, collect(c)...)
		}
		sort.Ints(vs)
		out[u] = vs
		return vs
	}
	for v := 0; v < n; v++ {
		collect(v)
	}
	return out
}
