package treedepth

import (
	"math/bits"

	"repro/internal/bitset"
)

// Cheap treedepth lower bounds for a connected subgraph, computed once per
// component before the branch-and-bound search starts. Each is a few
// microseconds on the instance sizes the solver targets, and each can prune
// whole deepening iterations: td >= degeneracy+1 (treedepth dominates
// treewidth+1, which dominates degeneracy+1), td >= |clique| (a clique needs
// a chain of that length in any elimination forest), and td >=
// ceil(log2(p+1)) for any path on p vertices (the path closed form, and
// treedepth is monotone under subgraphs).

// lowerBound returns the best of the cheap bounds for the connected mask.
func (s *solver) lowerBound(mask *bitset.Set, cnt int) int {
	lb := 2 // connected, cnt >= 2: at least one edge
	if d := s.degeneracyOf(mask, cnt) + 1; d > lb {
		lb = d
	}
	if c := s.greedyClique(mask); c > lb {
		lb = c
	}
	if p := s.pathBound(mask); p > lb {
		lb = p
	}
	return lb
}

// degeneracyOf computes the degeneracy of G[mask]: the max over the
// min-degree peeling order of the degree at removal time.
func (s *solver) degeneracyOf(mask *bitset.Set, cnt int) int {
	cur := mask.Clone()
	degen := 0
	for i := 0; i < cnt; i++ {
		minV, minD := -1, s.n+1
		cur.ForEach(func(v int) {
			if d := s.adj[v].IntersectionCount(cur); d < minD {
				minD = d
				minV = v
			}
		})
		if minD > degen {
			degen = minD
		}
		cur.Remove(minV)
	}
	return degen
}

// greedyClique returns the size of a clique found greedily: from each of the
// highest-degree start vertices, repeatedly add the candidate with the most
// neighbors among the remaining candidates.
func (s *solver) greedyClique(mask *bitset.Set) int {
	starts := s.orderedRoots(mask, mask.Count())
	if len(starts) > 8 {
		starts = starts[:8]
	}
	best := 0
	cand := bitset.New(s.n)
	for _, v := range starts {
		size := 1
		cand.CopyFrom(s.adj[v])
		cand.IntersectWith(mask)
		for !cand.Empty() {
			bestW, bestD := -1, -1
			cand.ForEach(func(w int) {
				if d := s.adj[w].IntersectionCount(cand); d > bestD {
					bestD = d
					bestW = w
				}
			})
			size++
			cand.IntersectWith(s.adj[bestW])
		}
		if size > best {
			best = size
		}
	}
	return best
}

// pathBound returns ceil(log2(p+1)) where p is the vertex count of a path
// found by double BFS (an eccentricity path): G contains P_p as a subgraph,
// and td(P_p) = ceil(log2(p+1)).
func (s *solver) pathBound(mask *bitset.Set) int {
	start, ok := mask.Min()
	if !ok {
		return 0
	}
	far, _ := s.bfsFarthest(mask, start)
	_, ecc := s.bfsFarthest(mask, far)
	p := ecc + 1             // vertices on the path
	return bits.Len(uint(p)) // ceil(log2(p+1)) for p >= 1
}

// bfsFarthest returns a farthest vertex from src within mask and its
// distance, breaking ties toward the smallest vertex index.
func (s *solver) bfsFarthest(mask *bitset.Set, src int) (int, int) {
	seen := bitset.New(s.n)
	seen.Add(src)
	frontier := bitset.New(s.n)
	frontier.Add(src)
	next := bitset.New(s.n)
	last := frontier.Clone()
	dist := 0
	for {
		next.Clear()
		frontier.ForEach(func(v int) {
			next.UnionWith(s.adj[v])
		})
		next.IntersectWith(mask)
		next.DifferenceWith(seen)
		if next.Empty() {
			v, _ := last.Min()
			return v, dist
		}
		seen.UnionWith(next)
		last.CopyFrom(next)
		frontier.CopyFrom(next)
		dist++
	}
}
