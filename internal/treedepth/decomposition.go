package treedepth

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Decomposition is a tree decomposition (Definition 2.3) whose decomposition
// tree is given by a parent array over its nodes; node i has bag Bags[i]
// (sorted vertex IDs of the underlying graph). In the canonical decomposition
// of Lemma 2.4, decomposition nodes coincide with graph vertices.
type Decomposition struct {
	Parent []int
	Bags   [][]int
}

// Width returns the width of the decomposition (max bag size minus one).
func (d *Decomposition) Width() int {
	w := 0
	for _, b := range d.Bags {
		if len(b) > w {
			w = len(b)
		}
	}
	return w - 1
}

// NumNodes returns the number of decomposition nodes.
func (d *Decomposition) NumNodes() int { return len(d.Parent) }

// Children returns for each decomposition node its children, sorted.
func (d *Decomposition) Children() [][]int {
	ch := make([][]int, len(d.Parent))
	for v, p := range d.Parent {
		if p >= 0 {
			ch[p] = append(ch[p], v)
		}
	}
	for _, c := range ch {
		sort.Ints(c)
	}
	return ch
}

// Roots returns the roots of the decomposition forest.
func (d *Decomposition) Roots() []int {
	var roots []int
	for v, p := range d.Parent {
		if p < 0 {
			roots = append(roots, v)
		}
	}
	return roots
}

// Verify checks the three tree-decomposition conditions of Definition 2.3
// against g: vertex coverage, edge coverage, and connectivity of the set of
// bags containing each vertex.
func (d *Decomposition) Verify(g *graph.Graph) error {
	n := g.NumVertices()
	covered := make([]bool, n)
	for _, bag := range d.Bags {
		for _, v := range bag {
			if v < 0 || v >= n {
				return fmt.Errorf("treedepth: bag vertex %d out of range", v)
			}
			covered[v] = true
		}
	}
	for v := 0; v < n; v++ {
		if !covered[v] {
			return fmt.Errorf("treedepth: vertex %d in no bag", v)
		}
	}
	inBag := func(bag []int, v int) bool {
		i := sort.SearchInts(bag, v)
		return i < len(bag) && bag[i] == v
	}
	for _, e := range g.Edges() {
		found := false
		for _, bag := range d.Bags {
			if inBag(bag, e.U) && inBag(bag, e.V) {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("treedepth: edge {%d,%d} in no bag", e.U, e.V)
		}
	}
	// Connectivity: the decomposition nodes containing v must induce a
	// connected subforest. Count nodes containing v, and nodes containing v
	// whose parent also contains v; connected iff exactly one node containing
	// v has no parent containing v.
	for v := 0; v < n; v++ {
		tops := 0
		for i, bag := range d.Bags {
			if !inBag(bag, v) {
				continue
			}
			p := d.Parent[i]
			if p < 0 || !inBag(d.Bags[p], v) {
				tops++
			}
		}
		if tops != 1 {
			return fmt.Errorf("treedepth: bags containing vertex %d form %d connected pieces", v, tops)
		}
	}
	return nil
}

// CanonicalDecomposition builds the canonical tree decomposition of Lemma
// 2.4 from an elimination forest: decomposition node u has bag
// {u} ∪ ancestors(u), and the decomposition tree is the forest itself. Its
// width is depth(f) - 1.
func CanonicalDecomposition(f *Forest) *Decomposition {
	n := len(f.Parent)
	bags := make([][]int, n)
	for u := 0; u < n; u++ {
		bag := f.PathToRoot(u)
		sort.Ints(bag)
		bags[u] = bag
	}
	return &Decomposition{Parent: append([]int(nil), f.Parent...), Bags: bags}
}
