package treedepth

// Branch-and-bound exact treedepth solver in the tdULL lineage (PACE 2020):
// connected-subgraph search over bitsets, a SetTrie cache of
// (lower, upper, root) bounds shared across components and deepening
// iterations, search-window pruning (searchLbnd/searchUbnd), iterative
// deepening on the component bounds, degree-guided root ordering, and cheap
// lower bounds (degeneracy+1, greedy clique, log2 of a long path) to prune
// early. Unlike the uint64 oracle in naive.go it has no 64-vertex ceiling.

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/bitset"
	"repro/internal/graph"
)

// ErrBudget is returned by SolveExact when the search exceeds the configured
// node budget before proving optimality.
var ErrBudget = errors.New("treedepth: search node budget exhausted")

// SolveOptions configures the exact solver.
type SolveOptions struct {
	// MaxNodes bounds the number of branch-and-bound passes (0 = unlimited).
	// The budget is deterministic: the same graph and budget always fail or
	// succeed identically, unlike a wall-clock limit.
	MaxNodes int64
}

// SolveStats reports search effort, for the S6 sweep and for tuning.
type SolveStats struct {
	Nodes        int64 // branch-and-bound root passes executed
	CacheHits    int64 // searches answered from cached bounds without branching
	CacheEntries int   // subgraphs stored in the SetTrie
	Components   int   // connected components of the input
	LowerBound   int   // best initial lower bound over components
	Heuristic    int   // initial heuristic upper bound (max over components)
}

// Exact computes the treedepth of g exactly.
func Exact(g *graph.Graph) (int, error) {
	td, _, _, err := SolveExact(g, SolveOptions{})
	return td, err
}

// ExactForest computes the treedepth of g and an optimal elimination forest
// witnessing it.
func ExactForest(g *graph.Graph) (int, *Forest, error) {
	td, f, _, err := SolveExact(g, SolveOptions{})
	return td, f, err
}

// SolveExact computes the treedepth of g, an optimal elimination forest
// witnessing it, and search statistics. With a MaxNodes budget it may return
// ErrBudget (wrapped) before proving optimality.
func SolveExact(g *graph.Graph, opts SolveOptions) (int, *Forest, SolveStats, error) {
	n := g.NumVertices()
	if n == 0 {
		return 0, &Forest{Parent: nil}, SolveStats{}, nil
	}
	s := newSolver(g, opts)
	td := 0
	for _, comp := range s.componentsOf(s.full) {
		s.nComponents++
		d, err := s.solveComponent(comp.set, comp.cnt)
		if err != nil {
			return 0, nil, s.stats(), err
		}
		if d > td {
			td = d
		}
	}
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	s.reconstruct(s.full, -1, parent)
	return td, &Forest{Parent: parent}, s.stats(), nil
}

type solver struct {
	g    *graph.Graph
	n    int
	adj  []*bitset.Set // neighbor bitsets over the full universe
	full *bitset.Set
	opts SolveOptions

	cache *SetTrie
	key   []int // scratch for cache keys

	nodes       int64
	hits        int64
	nComponents int
	lb0, ub0    int
}

type maskComp struct {
	set *bitset.Set
	cnt int
}

func newSolver(g *graph.Graph, opts SolveOptions) *solver {
	n := g.NumVertices()
	s := &solver{
		g:     g,
		n:     n,
		adj:   make([]*bitset.Set, n),
		full:  bitset.New(n),
		opts:  opts,
		cache: NewSetTrie(),
		key:   make([]int, 0, n),
	}
	for v := 0; v < n; v++ {
		s.adj[v] = bitset.New(n)
		for _, w := range g.Neighbors(v) {
			s.adj[v].Add(w)
		}
	}
	s.full.Fill()
	return s
}

func (s *solver) stats() SolveStats {
	return SolveStats{
		Nodes:        s.nodes,
		CacheHits:    s.hits,
		CacheEntries: s.cache.Len(),
		Components:   s.nComponents,
		LowerBound:   s.lb0,
		Heuristic:    s.ub0,
	}
}

func (s *solver) budgetExceeded() bool {
	return s.opts.MaxNodes > 0 && s.nodes >= s.opts.MaxNodes
}

// entryOf returns the cache entry for a connected mask with cnt >= 3
// vertices, creating it with cheap initial bounds when absent.
func (s *solver) entryOf(mask *bitset.Set, cnt int) *trieEntry {
	s.key = mask.AppendIndices(s.key[:0])
	e, created := s.cache.GetOrInsert(s.key)
	if created {
		// Connected with >= 2 vertices: there is an edge, so td >= 2; with a
		// cycle (m >= cnt edges) a P4 or K3 is present, so td >= 3.
		lower := int32(2)
		m := 0
		for _, v := range s.key {
			m += s.adj[v].IntersectionCount(mask)
		}
		if m/2 >= cnt {
			lower = 3
		}
		e.lower = lower
		e.upper = int32(cnt)
		e.root = -1
	}
	return e
}

// solveComponent computes td of the connected component exactly by iterative
// deepening: decision windows (k, k+1) on the windowed search until the
// cached bounds meet.
func (s *solver) solveComponent(comp *bitset.Set, cnt int) (int, error) {
	if cnt <= 2 {
		return cnt, nil
	}
	e := s.entryOf(comp, cnt)
	if lb := int32(s.lowerBound(comp, cnt)); lb > e.lower {
		e.lower = lb
	}
	s.seedHeuristic(comp, cnt)
	if int(e.lower) > s.lb0 {
		s.lb0 = int(e.lower)
	}
	if int(e.upper) > s.ub0 {
		s.ub0 = int(e.upper)
	}
	for k := int(e.lower); ; k++ {
		if int(e.upper) <= k {
			return int(e.upper), nil
		}
		s.search(comp, cnt, k, k+1)
		if int(e.upper) <= k {
			return int(e.upper), nil
		}
		if s.budgetExceeded() {
			return 0, fmt.Errorf("%w: %d nodes, bounds [%d, %d]", ErrBudget, s.nodes, e.lower, e.upper)
		}
	}
}

// search refines the cached bounds of the connected subgraph mask
// (cnt = |mask| >= 1) until they are exact, the lower bound reaches
// searchUbnd (the caller already has an alternative at least this good), or
// the upper bound drops to searchLbnd (a sibling component already forces
// that depth, so further refinement cannot change the caller's maximum).
// Returns the refined (lower, upper); masks with cnt <= 2 are immediate.
func (s *solver) search(mask *bitset.Set, cnt, searchLbnd, searchUbnd int) (int, int) {
	if cnt <= 2 {
		return cnt, cnt
	}
	e := s.entryOf(mask, cnt)
	branched := false
	for {
		lo, up := int(e.lower), int(e.upper)
		if lo == up || lo >= searchUbnd || up <= searchLbnd || s.budgetExceeded() {
			if !branched {
				s.hits++
			}
			return lo, up
		}
		branched = true
		s.pass(mask, cnt, e, searchLbnd, searchUbnd)
		if int(e.lower) == lo && int(e.upper) == up {
			// The windows pruned every refinement without moving either
			// bound (not reachable from the decision-window driver, kept as
			// a terminating fallback for other callers): close the gap
			// exhaustively.
			s.exactify(mask, cnt)
		}
	}
}

// pass runs one branch-and-bound sweep over candidate roots of mask,
// tightening the cache entry in place. Roots are tried in decreasing
// subgraph-degree order (high-degree roots shatter the graph fastest);
// component subproblems inherit narrowed windows as in tdULL: a child is
// only worth solving below min(searchUbnd, upper)-1, and not below the best
// lower bound its sibling components already force.
func (s *solver) pass(mask *bitset.Set, cnt int, e *trieEntry, searchLbnd, searchUbnd int) {
	s.nodes++
	roots := s.orderedRoots(mask, cnt)
	rest := mask.Clone()
	minOver := s.n + 2
	for _, v := range roots {
		bound := searchUbnd
		if up := int(e.upper); up < bound {
			bound = up
		}
		childUbnd := bound - 1 // a useful root needs every component below this
		rest.CopyFrom(mask)
		rest.Remove(v)
		comps := s.componentsOf(rest)
		// Larger components fail first and force sibling windows sooner.
		sort.SliceStable(comps, func(i, j int) bool { return comps[i].cnt > comps[j].cnt })
		rootLo, rootUp := 1, 1
		failed := false
		for _, c := range comps {
			childLbnd := searchLbnd - 1
			if rootLo-1 > childLbnd {
				childLbnd = rootLo - 1
			}
			clo, cup := s.search(c.set, c.cnt, childLbnd, childUbnd)
			if 1+clo > rootLo {
				rootLo = 1 + clo
			}
			if 1+cup > rootUp {
				rootUp = 1 + cup
			}
			if clo >= childUbnd {
				failed = true
				break
			}
		}
		if rootLo < minOver {
			minOver = rootLo
		}
		if !failed && rootUp < int(e.upper) {
			e.upper = int32(rootUp)
			e.root = int32(v)
		}
		if int(e.upper) <= searchLbnd || e.lower == e.upper {
			return
		}
		if s.budgetExceeded() {
			return
		}
	}
	// Every root was tried: td = min over roots of (1 + td(G - root)), and
	// rootLo underestimates each term, so minOver is a valid lower bound.
	if minOver > int(e.lower) {
		e.lower = int32(minOver)
	}
}

// exactify closes the gap between the cached bounds of a connected mask by
// exhaustive branching with only upper-bound pruning. It terminates
// unconditionally (strictly smaller masks) and ignores the node budget by
// design: it is the fallback that guarantees search cannot loop.
func (s *solver) exactify(mask *bitset.Set, cnt int) int {
	if cnt <= 2 {
		return cnt
	}
	e := s.entryOf(mask, cnt)
	if e.lower == e.upper {
		return int(e.lower)
	}
	s.nodes++
	rest := mask.Clone()
	for _, v := range s.orderedRoots(mask, cnt) {
		rest.CopyFrom(mask)
		rest.Remove(v)
		depth := 1
		pruned := false
		for _, c := range s.componentsOf(rest) {
			if d := 1 + s.exactify(c.set, c.cnt); d > depth {
				depth = d
			}
			if depth >= int(e.upper) && e.root >= 0 {
				pruned = true
				break
			}
		}
		if !pruned && (depth < int(e.upper) || e.root < 0) {
			e.upper = int32(depth)
			e.root = int32(v)
		}
	}
	e.lower = e.upper
	return int(e.upper)
}

// seedHeuristic inserts a heuristic elimination forest for the connected
// mask into the cache (roots witnessing upper bounds all the way down) and
// returns its depth. The root choice is separator-like: the vertex whose
// removal minimizes the largest remaining component, which is optimal on
// paths and near-optimal on trees, so iterative deepening starts from a
// tight upper bound.
func (s *solver) seedHeuristic(mask *bitset.Set, cnt int) int {
	if cnt <= 2 {
		return cnt
	}
	e := s.entryOf(mask, cnt)
	if int(e.upper) < cnt {
		// Already seeded (or improved by search); don't redo the work.
		return int(e.upper)
	}
	bestV, bestMax := -1, cnt+1
	var bestComps []maskComp
	rest := mask.Clone()
	mask.ForEach(func(v int) {
		rest.CopyFrom(mask)
		rest.Remove(v)
		comps := s.componentsOf(rest)
		maxSz := 0
		for _, c := range comps {
			if c.cnt > maxSz {
				maxSz = c.cnt
			}
		}
		if maxSz < bestMax {
			bestMax = maxSz
			bestV = v
			bestComps = comps
		}
	})
	depth := 1
	for _, c := range bestComps {
		if d := 1 + s.seedHeuristic(c.set, c.cnt); d > depth {
			depth = d
		}
	}
	if depth < int(e.upper) || e.root < 0 {
		e.upper = int32(depth)
		e.root = int32(bestV)
	}
	return int(e.upper)
}

// orderedRoots returns the vertices of mask sorted by decreasing degree
// within the mask, ties broken by increasing vertex index (deterministic).
func (s *solver) orderedRoots(mask *bitset.Set, cnt int) []int {
	verts := mask.AppendIndices(make([]int, 0, cnt))
	deg := make([]int, len(verts))
	for i, v := range verts {
		deg[i] = s.adj[v].IntersectionCount(mask)
	}
	idx := make([]int, len(verts))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if deg[idx[a]] != deg[idx[b]] {
			return deg[idx[a]] > deg[idx[b]]
		}
		return verts[idx[a]] < verts[idx[b]]
	})
	out := make([]int, len(verts))
	for i, j := range idx {
		out[i] = verts[j]
	}
	return out
}

// componentsOf splits mask into connected components via bitset BFS, in
// order of their minimum vertex.
func (s *solver) componentsOf(mask *bitset.Set) []maskComp {
	var comps []maskComp
	remaining := mask.Clone()
	frontier := bitset.New(s.n)
	next := bitset.New(s.n)
	for {
		seed, ok := remaining.Min()
		if !ok {
			return comps
		}
		comp := bitset.New(s.n)
		comp.Add(seed)
		frontier.Clear()
		frontier.Add(seed)
		for !frontier.Empty() {
			next.Clear()
			frontier.ForEach(func(v int) {
				next.UnionWith(s.adj[v])
			})
			next.IntersectWith(mask)
			next.DifferenceWith(comp)
			comp.UnionWith(next)
			frontier.CopyFrom(next)
		}
		comps = append(comps, maskComp{set: comp, cnt: comp.Count()})
		remaining.DifferenceWith(comp)
	}
}

// reconstruct fills the parent array for an elimination forest of G[mask],
// attaching component roots below attachTo (-1 for top level), by chasing
// the witnessing roots stored in the cache. Masks with at most 2 vertices
// (never cached) fall back to a min-vertex chain, which is optimal for them.
func (s *solver) reconstruct(mask *bitset.Set, attachTo int, parent []int) {
	for _, comp := range s.componentsOf(mask) {
		root := -1
		if comp.cnt >= 3 {
			s.key = comp.set.AppendIndices(s.key[:0])
			if e := s.cache.Get(s.key); e != nil && e.root >= 0 {
				root = int(e.root)
			}
		}
		if root < 0 {
			root, _ = comp.set.Min()
		}
		parent[root] = attachTo
		if comp.cnt == 1 {
			continue
		}
		rest := comp.set
		rest.Remove(root)
		s.reconstruct(rest, root, parent)
	}
}
