package treedepth

import (
	"fmt"
	"math/bits"

	"repro/internal/graph"
)

// naiveLimit bounds the exhaustive-search oracle; beyond this the state
// space (all vertex subsets of a uint64 mask) is impractical.
const naiveLimit = 20

// exactNaive computes the treedepth of g with the recursive
// characterization of Lemma 2.2, memoized over uint64 vertex subsets. It is
// retained verbatim as the differential oracle for the branch-and-bound
// solver in solver.go and returns ErrTooLarge beyond 20 vertices.
func exactNaive(g *graph.Graph, wantForest bool) (int, *Forest, error) {
	n := g.NumVertices()
	if n > naiveLimit {
		return 0, nil, fmt.Errorf("%w: n=%d > %d", ErrTooLarge, n, naiveLimit)
	}
	if n == 0 {
		return 0, &Forest{Parent: nil}, nil
	}
	adj := make([]uint64, n)
	for _, e := range g.Edges() {
		adj[e.U] |= 1 << uint(e.V)
		adj[e.V] |= 1 << uint(e.U)
	}
	s := &naiveSolver{adj: adj, n: n, memo: make(map[uint64]int), bestRoot: make(map[uint64]int)}
	full := uint64(1)<<uint(n) - 1
	td := s.solve(full)
	if !wantForest {
		return td, nil, nil
	}
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	s.reconstruct(full, -1, parent)
	return td, &Forest{Parent: parent}, nil
}

// ExactNaive exposes the naive oracle (with witness forest) for external
// cross-checks, e.g. the S6 experiment sweep. It returns ErrTooLarge beyond
// 20 vertices.
func ExactNaive(g *graph.Graph) (int, *Forest, error) {
	return exactNaive(g, true)
}

type naiveSolver struct {
	adj      []uint64
	n        int
	memo     map[uint64]int // mask of a *connected* subgraph -> treedepth
	bestRoot map[uint64]int // mask -> optimal root vertex
}

// solve returns td(G[mask]) handling disconnected masks by taking the max
// over components (Lemma 2.2).
func (s *naiveSolver) solve(mask uint64) int {
	if mask == 0 {
		return 0
	}
	max := 0
	for _, comp := range s.components(mask) {
		if d := s.solveConnected(comp); d > max {
			max = d
		}
	}
	return max
}

func (s *naiveSolver) solveConnected(mask uint64) int {
	if bits.OnesCount64(mask) == 1 {
		return 1
	}
	if d, ok := s.memo[mask]; ok {
		return d
	}
	best := s.n + 1
	bestV := -1
	for m := mask; m != 0; m &= m - 1 {
		v := bits.TrailingZeros64(m)
		if d := 1 + s.solve(mask&^(1<<uint(v))); d < best {
			best = d
			bestV = v
		}
	}
	s.memo[mask] = best
	s.bestRoot[mask] = bestV
	return best
}

// components splits mask into connected components of G[mask].
func (s *naiveSolver) components(mask uint64) []uint64 {
	var comps []uint64
	remaining := mask
	for remaining != 0 {
		seed := uint64(1) << uint(bits.TrailingZeros64(remaining))
		comp := seed
		frontier := seed
		for frontier != 0 {
			next := uint64(0)
			for f := frontier; f != 0; f &= f - 1 {
				v := bits.TrailingZeros64(f)
				next |= s.adj[v] & mask &^ comp
			}
			comp |= next
			frontier = next
		}
		comps = append(comps, comp)
		remaining &^= comp
	}
	return comps
}

// reconstruct fills the parent array for the elimination forest of G[mask],
// attaching component roots below attachTo (-1 for top level).
func (s *naiveSolver) reconstruct(mask uint64, attachTo int, parent []int) {
	for _, comp := range s.components(mask) {
		var root int
		if bits.OnesCount64(comp) == 1 {
			root = bits.TrailingZeros64(comp)
		} else {
			// Ensure the memo entry exists (solve may not have been called on
			// this exact component during the optimal branch).
			s.solveConnected(comp)
			root = s.bestRoot[comp]
		}
		parent[root] = attachTo
		rest := comp &^ (1 << uint(root))
		if rest != 0 {
			s.reconstruct(rest, root, parent)
		}
	}
}
