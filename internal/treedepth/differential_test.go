package treedepth

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/graph/gen"
)

// The differential battery: the branch-and-bound solver must agree with the
// naive Lemma-2.2 recursion (its oracle) on seeded random graphs across the
// density spectrum, and every returned forest must witness the value.

func TestDifferentialSolverVsNaive(t *testing.T) {
	trials := 500
	if testing.Short() {
		trials = 100
	}
	r := rand.New(rand.NewSource(20250808))
	densities := []float64{0.05, 0.1, 0.2, 0.35, 0.5, 0.7, 0.9}
	for trial := 0; trial < trials; trial++ {
		n := 1 + r.Intn(16)
		p := densities[trial%len(densities)]
		seed := r.Int63()
		g := gen.RandomGNP(n, p, seed)
		name := fmt.Sprintf("trial%d_n%d_p%.2f_seed%d", trial, n, p, seed)
		want, _, err := exactNaive(g, false)
		if err != nil {
			t.Fatalf("%s: oracle: %v", name, err)
		}
		got, f, stats, err := SolveExact(g, SolveOptions{})
		if err != nil {
			t.Fatalf("%s: solver: %v", name, err)
		}
		if got != want {
			t.Fatalf("%s: solver td=%d, oracle td=%d (stats %+v)", name, got, want, stats)
		}
		if n > 0 {
			if err := ValidateForest(g, f, got); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
	}
}

// A thinner band at the oracle's ceiling: sparse graphs with 17-20 vertices
// keep the naive subset recursion tractable while exercising the solver on
// the largest masks the oracle can still check.
func TestDifferentialSolverVsNaiveAtCap(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 20; trial++ {
		n := 17 + r.Intn(4)
		p := 0.1 + 0.05*float64(trial%4)
		g := gen.RandomGNP(n, p, r.Int63())
		want, _, err := exactNaive(g, false)
		if err != nil {
			t.Fatal(err)
		}
		got, f, _, err := SolveExact(g, SolveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d (n=%d p=%.2f): solver td=%d, oracle td=%d", trial, n, p, got, want)
		}
		if err := ValidateForest(g, f, got); err != nil {
			t.Fatal(err)
		}
	}
}

// ValidateForest is property-tested over the same 50-graph population the
// protocol differential harness uses (internal/protocols/differential_test.go):
// both exact solvers and DFSForest must produce forests it accepts, and
// mutated forests must be rejected.
func TestValidateForestOverDifferentialSuite(t *testing.T) {
	count := 50
	if testing.Short() {
		count = 10
	}
	for i := 0; i < count; i++ {
		d := 2 + i%2
		n := 8 + (i%7)*4
		prob := 0.1 + 0.05*float64(i%4)
		g, _ := gen.BoundedTreedepth(n, d, prob, int64(1000+i))
		name := fmt.Sprintf("g%02d_n%d_d%d", i, n, d)

		td, f, _, err := SolveExact(g, SolveOptions{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if td > d {
			t.Fatalf("%s: solver td=%d exceeds generator bound %d", name, td, d)
		}
		if err := ValidateForest(g, f, td); err != nil {
			t.Fatalf("%s: exact forest rejected: %v", name, err)
		}
		if err := ValidateForest(g, f, td+1); err == nil {
			t.Fatalf("%s: wrong claimed depth accepted", name)
		}

		dfs := DFSForest(g)
		if err := ValidateForest(g, dfs, dfs.Depth()); err != nil {
			t.Fatalf("%s: DFS forest rejected: %v", name, err)
		}

		// Breaking one parent pointer must be caught: rerooting a non-root
		// vertex orphans the edge to its former parent (or corrupts depth).
		mut := NewForest(f.Parent)
		for v := range mut.Parent {
			if mut.Parent[v] >= 0 && g.Degree(v) > 0 {
				mut.Parent[v] = -1
				break
			}
		}
		bad := false
		if err := mut.VerifyElimination(g); err != nil {
			bad = true
		} else if mut.Depth() != td {
			bad = true
		}
		if !bad {
			t.Fatalf("%s: mutated forest not rejected", name)
		}
	}
}

// The S1 sweep runs DFSForest on n = 10^5 paths; the explicit-stack
// traversal must handle them (a recursive DFS would push one frame per
// vertex) and preserve the original neighbor order exactly.
func TestDFSForestLongPath(t *testing.T) {
	const n = 200000
	g := gen.Path(n)
	f := DFSForest(g)
	for v := 1; v < n; v++ {
		if f.Parent[v] != v-1 {
			t.Fatalf("parent[%d] = %d, want %d", v, f.Parent[v], v-1)
		}
	}
	if f.Parent[0] != -1 {
		t.Fatal("vertex 0 must be the root")
	}
	if d := f.Depth(); d != n {
		t.Fatalf("depth = %d, want %d", d, n)
	}
}

// The iterative DFS must match the recursive definition: preorder, neighbors
// in increasing order, min-vertex roots. A direct recursive reimplementation
// pins the traversal on random graphs.
func TestDFSForestMatchesRecursive(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		g := gen.RandomGNP(2+r.Intn(40), 0.15, r.Int63())
		n := g.NumVertices()
		parent := make([]int, n)
		visited := make([]bool, n)
		for i := range parent {
			parent[i] = -1
		}
		var dfs func(u int)
		dfs = func(u int) {
			visited[u] = true
			for _, w := range g.Neighbors(u) {
				if !visited[w] {
					parent[w] = u
					dfs(w)
				}
			}
		}
		for v := 0; v < n; v++ {
			if !visited[v] {
				dfs(v)
			}
		}
		f := DFSForest(g)
		for v := 0; v < n; v++ {
			if f.Parent[v] != parent[v] {
				t.Fatalf("trial %d: parent[%d] = %d, recursive = %d", trial, v, f.Parent[v], parent[v])
			}
		}
	}
}
