package treedepth

import "repro/internal/graph"

// DFSForest returns an elimination forest of g whose edges are all edges of
// g, built by depth-first search: every non-tree edge of an undirected DFS is
// a back edge, so the DFS forest is an elimination forest. By Lemma 2.5 its
// depth is at most 2^td(G). Roots are chosen as the minimum vertex of each
// component, and neighbors are explored in increasing order, making the
// construction deterministic.
//
// The traversal uses an explicit stack: the S1 sweep runs it on path graphs
// with n = 10^5 vertices, where a recursive DFS would push one frame per
// vertex and grow the goroutine stack by the whole path length.
func DFSForest(g *graph.Graph) *Forest {
	n := g.NumVertices()
	parent := make([]int, n)
	visited := make([]bool, n)
	for i := range parent {
		parent[i] = -1
	}
	// frame (u, i): neighbors of u before index i have been examined.
	type frame struct {
		u, i int
	}
	var stack []frame
	for v := 0; v < n; v++ {
		if visited[v] {
			continue
		}
		visited[v] = true
		stack = append(stack[:0], frame{u: v})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			nbrs := g.Neighbors(f.u)
			advanced := false
			for f.i < len(nbrs) {
				w := nbrs[f.i]
				f.i++
				if !visited[w] {
					visited[w] = true
					parent[w] = f.u
					stack = append(stack, frame{u: w})
					advanced = true
					break
				}
			}
			if !advanced {
				stack = stack[:len(stack)-1]
			}
		}
	}
	return &Forest{Parent: parent}
}
