package treedepth

import (
	"errors"
	"testing"

	"repro/internal/graph"
	"repro/internal/graph/gen"
)

// The branch-and-bound solver must reproduce closed-form treedepths far
// beyond the naive oracle's 20-vertex ceiling.
func TestSolverClosedFormsBeyondCap(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"P63", gen.Path(63), 6},
		{"P64", gen.Path(64), 7},
		{"P100", gen.Path(100), 7},
		{"P127", gen.Path(127), 7},
		{"P128", gen.Path(128), 8},
		{"K32", gen.Complete(32), 32},
		{"K64", gen.Complete(64), 64},
		{"star100", gen.Star(100), 2},
		{"C64", gen.Cycle(64), 7}, // td(C_n) = ceil(log2(n)) + 1
		{"C100", gen.Cycle(100), 8},
		{"bintree6", gen.CompleteBinaryTree(6), 6},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			td, f, stats, err := SolveExact(tc.g, SolveOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if td != tc.want {
				t.Fatalf("td = %d, want %d (stats %+v)", td, tc.want, stats)
			}
			if err := ValidateForest(tc.g, f, td); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSolverDisconnectedAndTiny(t *testing.T) {
	td, f, _, err := SolveExact(graph.New(0), SolveOptions{})
	if err != nil || td != 0 || f.NumVertices() != 0 {
		t.Fatalf("empty graph: td=%d f=%v err=%v", td, f, err)
	}
	td, f, _, err = SolveExact(graph.New(5), SolveOptions{})
	if err != nil || td != 1 {
		t.Fatalf("edgeless: td=%d err=%v", td, err)
	}
	if err := ValidateForest(graph.New(5), f, 1); err != nil {
		t.Fatal(err)
	}
	g, _ := gen.DisjointUnion(gen.Complete(6), gen.Path(40), gen.Star(9))
	td, f, _, err = SolveExact(g, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if want := 6; td != want { // max(6, 6, 2)
		t.Fatalf("td = %d, want %d", td, want)
	}
	if err := ValidateForest(g, f, td); err != nil {
		t.Fatal(err)
	}
}

func TestSolverBudget(t *testing.T) {
	// A 3x5 grid needs real search; one node of budget cannot finish it.
	g := gen.Grid(3, 5)
	_, _, _, err := SolveExact(g, SolveOptions{MaxNodes: 1})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	// The budget is deterministic: the same call fails identically.
	_, _, _, err2 := SolveExact(g, SolveOptions{MaxNodes: 1})
	if err2 == nil || err.Error() != err2.Error() {
		t.Fatalf("budget failure not deterministic: %v vs %v", err, err2)
	}
	// With no budget the instance solves, and Exact/ExactForest agree.
	td, f, stats, err := SolveExact(g, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Nodes == 0 {
		t.Fatal("expected the grid to require branching")
	}
	if err := ValidateForest(g, f, td); err != nil {
		t.Fatal(err)
	}
	td2, err := Exact(g)
	if err != nil || td2 != td {
		t.Fatalf("Exact = (%d, %v), SolveExact = %d", td2, err, td)
	}
}

func TestSolverDeterministic(t *testing.T) {
	g, _ := gen.BoundedTreedepth(40, 4, 0.3, 7)
	td1, f1, st1, err := SolveExact(g, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	td2, f2, st2, err := SolveExact(g, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if td1 != td2 || st1 != st2 {
		t.Fatalf("nondeterministic: (%d, %+v) vs (%d, %+v)", td1, st1, td2, st2)
	}
	for v := range f1.Parent {
		if f1.Parent[v] != f2.Parent[v] {
			t.Fatalf("forests differ at vertex %d", v)
		}
	}
}

// The witness invariant: the returned forest's depth always equals the
// returned treedepth, across a spread of generator families.
func TestSolverWitnessAcrossFamilies(t *testing.T) {
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"caterpillar", gen.Caterpillar(12, 2)},
		{"outerplanar", gen.MaximalOuterplanar(24, 3)},
		{"degenerate", gen.RandomDegenerate(22, 2, 4)},
		{"tree", gen.RandomTree(60, 5)},
		{"gnp-sparse", gen.RandomGNP(28, 0.08, 6)},
		{"gnp-dense", gen.RandomGNP(16, 0.5, 7)},
		{"bipartite", gen.CompleteBipartite(5, 9)},
		{"bounded-td", mustFirst(gen.BoundedTreedepth(48, 4, 0.25, 8))},
	}
	for _, tc := range graphs {
		t.Run(tc.name, func(t *testing.T) {
			td, f, _, err := SolveExact(tc.g, SolveOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if err := ValidateForest(tc.g, f, td); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func mustFirst(g *graph.Graph, _ []int) *graph.Graph { return g }

func TestSolverStatsPopulated(t *testing.T) {
	g := gen.RandomGNP(18, 0.3, 11)
	_, _, stats, err := SolveExact(g, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Components == 0 || stats.CacheEntries == 0 || stats.LowerBound < 2 || stats.Heuristic == 0 {
		t.Fatalf("implausible stats: %+v", stats)
	}
}
