package treedepth

// SetTrie is the solver's bound cache, following the tdULL cache discipline:
// it maps vertex sets (encoded as strictly increasing index slices) to an
// Entry holding a proven lower bound, a proven upper bound, and the root
// witnessing that upper bound. The invariant maintained by the solver: every
// stored set induces a connected subgraph with at least 3 vertices, and for
// every entry with root >= 0, each component of the set minus its root that
// has 3 or more vertices is also stored, with upper bounds consistent with
// the parent's (so an optimal elimination forest can be reconstructed by
// chasing roots). The trie shares prefixes between sets, so the memory cost
// per cached subgraph is a handful of child slots rather than a full key
// copy, and lookups walk one node per set element.
type SetTrie struct {
	nodes   []trieNode
	entries []*trieEntryChunk
	count   int
}

// trieEntry is one cached subgraph: [lower, upper] treedepth bounds and the
// witnessing root (-1 until an upper-bound witness is recorded).
type trieEntry struct {
	lower int32
	upper int32
	root  int32
}

const trieChunkSize = 1024

type trieEntryChunk = [trieChunkSize]trieEntry

type trieNode struct {
	vals  []int32 // sorted child labels (vertex indices)
	kids  []int32 // child node indices, aligned with vals
	entry int32   // index into the entry arena, -1 if no set ends here
}

// NewSetTrie returns an empty cache.
func NewSetTrie() *SetTrie {
	return &SetTrie{nodes: []trieNode{{entry: -1}}}
}

// Len returns the number of sets stored.
func (t *SetTrie) Len() int { return t.count }

// Get returns the entry stored for exactly this key, or nil. The key must be
// strictly increasing.
func (t *SetTrie) Get(key []int) *trieEntry {
	cur := int32(0)
	for _, v := range key {
		nd := &t.nodes[cur]
		i := findChild(nd.vals, int32(v))
		if i < 0 {
			return nil
		}
		cur = nd.kids[i]
	}
	if e := t.nodes[cur].entry; e >= 0 {
		return t.entryAt(e)
	}
	return nil
}

// GetOrInsert returns the entry for the key, creating it (zero-valued) when
// absent; created reports whether a new entry was allocated. The key must be
// strictly increasing. Returned pointers stay valid across later inserts
// (entries live in fixed-size chunks that are never moved).
func (t *SetTrie) GetOrInsert(key []int) (e *trieEntry, created bool) {
	cur := int32(0)
	for _, v := range key {
		nd := &t.nodes[cur]
		i := findChild(nd.vals, int32(v))
		if i < 0 {
			next := int32(len(t.nodes))
			t.nodes = append(t.nodes, trieNode{entry: -1})
			nd = &t.nodes[cur] // re-take: append may have moved the backing array
			i = insertChild(nd, int32(v), next)
		}
		cur = t.nodes[cur].kids[i]
	}
	nd := &t.nodes[cur]
	if nd.entry >= 0 {
		return t.entryAt(nd.entry), false
	}
	idx := int32(t.count)
	if t.count%trieChunkSize == 0 {
		t.entries = append(t.entries, new(trieEntryChunk))
	}
	t.count++
	nd.entry = idx
	return t.entryAt(idx), true
}

func (t *SetTrie) entryAt(i int32) *trieEntry {
	return &t.entries[i/trieChunkSize][i%trieChunkSize]
}

// findChild returns the position of v in vals, or -1.
func findChild(vals []int32, v int32) int {
	lo, hi := 0, len(vals)
	for lo < hi {
		mid := (lo + hi) / 2
		if vals[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(vals) && vals[lo] == v {
		return lo
	}
	return -1
}

// insertChild inserts (v, kid) keeping vals sorted and returns v's position.
func insertChild(nd *trieNode, v, kid int32) int {
	lo, hi := 0, len(nd.vals)
	for lo < hi {
		mid := (lo + hi) / 2
		if nd.vals[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	nd.vals = append(nd.vals, 0)
	copy(nd.vals[lo+1:], nd.vals[lo:])
	nd.vals[lo] = v
	nd.kids = append(nd.kids, 0)
	copy(nd.kids[lo+1:], nd.kids[lo:])
	nd.kids[lo] = kid
	return lo
}
