package treedepth

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/graph/gen"
)

func TestForestBasics(t *testing.T) {
	// Tree: 0 <- 1 <- 2, 0 <- 3; root 0. Plus separate root 4.
	f := NewForest([]int{-1, 0, 1, 0, -1})
	if got := f.Roots(); len(got) != 2 || got[0] != 0 || got[1] != 4 {
		t.Fatalf("Roots = %v", got)
	}
	ch := f.Children()
	if len(ch[0]) != 2 || ch[0][0] != 1 || ch[0][1] != 3 {
		t.Fatalf("Children(0) = %v", ch[0])
	}
	if f.DepthOf(2) != 3 || f.DepthOf(0) != 1 || f.DepthOf(4) != 1 {
		t.Fatal("DepthOf wrong")
	}
	if f.Depth() != 3 {
		t.Fatalf("Depth = %d, want 3", f.Depth())
	}
	if !f.IsAncestor(0, 2) || !f.IsAncestor(2, 2) || f.IsAncestor(3, 2) || f.IsAncestor(2, 0) {
		t.Fatal("IsAncestor wrong")
	}
	p := f.PathToRoot(2)
	if len(p) != 3 || p[0] != 2 || p[1] != 1 || p[2] != 0 {
		t.Fatalf("PathToRoot = %v", p)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestForestValidateErrors(t *testing.T) {
	if err := NewForest([]int{1, 0}).Validate(); err == nil {
		t.Fatal("cycle should fail validation")
	}
	if err := NewForest([]int{5}).Validate(); err == nil {
		t.Fatal("out-of-range parent should fail validation")
	}
	if err := NewForest([]int{0}).Validate(); err == nil {
		t.Fatal("self-parent should fail validation")
	}
}

func TestVerifyElimination(t *testing.T) {
	g := gen.Path(4) // 0-1-2-3
	// Valid elimination tree of P4 with depth 3: root 1, children 0 and 2, 2->3.
	good := NewForest([]int{1, -1, 1, 2})
	if err := good.VerifyElimination(g); err != nil {
		t.Fatal(err)
	}
	// Bad: 0 and 2 siblings under 1, 3 under 0 -> edge {2,3} not ancestor-related.
	bad := NewForest([]int{1, -1, 1, 0})
	if err := bad.VerifyElimination(g); err == nil {
		t.Fatal("expected elimination violation")
	}
	// Wrong size.
	if err := good.VerifyElimination(gen.Path(5)); err == nil {
		t.Fatal("expected size mismatch error")
	}
}

func TestSubtreeVertices(t *testing.T) {
	f := NewForest([]int{-1, 0, 1, 0})
	sub := f.SubtreeVertices()
	if len(sub[0]) != 4 {
		t.Fatalf("subtree(0) = %v", sub[0])
	}
	if len(sub[1]) != 2 || sub[1][0] != 1 || sub[1][1] != 2 {
		t.Fatalf("subtree(1) = %v", sub[1])
	}
	if len(sub[3]) != 1 {
		t.Fatalf("subtree(3) = %v", sub[3])
	}
}

func pathTD(n int) int {
	// td(P_n) = ceil(log2(n+1)).
	return int(math.Ceil(math.Log2(float64(n + 1))))
}

func TestExactKnownValues(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"K1", graph.New(1), 1},
		{"P2", gen.Path(2), 2},
		{"P3", gen.Path(3), 2},
		{"P4", gen.Path(4), 3},
		{"P7", gen.Path(7), 3},
		{"P8", gen.Path(8), 4},
		{"P15", gen.Path(15), 4},
		{"K4", gen.Complete(4), 4},
		{"K6", gen.Complete(6), 6},
		{"star6", gen.Star(6), 2},
		{"C3", gen.Cycle(3), 3},
		{"C4", gen.Cycle(4), 3},
		{"empty3", graph.New(3), 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := Exact(tc.g)
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Fatalf("Exact = %d, want %d", got, tc.want)
			}
		})
	}
}

func TestExactPathFormula(t *testing.T) {
	for n := 1; n <= 16; n++ {
		got, err := Exact(gen.Path(n))
		if err != nil {
			t.Fatal(err)
		}
		if want := pathTD(n); got != want {
			t.Fatalf("td(P%d) = %d, want %d", n, got, want)
		}
	}
}

func TestExactDisconnected(t *testing.T) {
	g, _ := gen.DisjointUnion(gen.Complete(4), gen.Path(3))
	got, err := Exact(g)
	if err != nil {
		t.Fatal(err)
	}
	if got != 4 {
		t.Fatalf("td(K4 + P3) = %d, want 4", got)
	}
}

func TestExactBeyondNaiveCap(t *testing.T) {
	// The naive oracle still refuses n > 20; the branch-and-bound solver
	// replaced it as the public Exact and has no such ceiling.
	if _, _, err := exactNaive(gen.Path(21), false); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("exactNaive err = %v, want ErrTooLarge", err)
	}
	got, err := Exact(gen.Path(21))
	if err != nil {
		t.Fatal(err)
	}
	if want := pathTD(21); got != want {
		t.Fatalf("td(P21) = %d, want %d", got, want)
	}
}

func TestExactForestWitness(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		n := 2 + r.Intn(9)
		g := gen.RandomGNP(n, 0.4, r.Int63())
		td, f, err := ExactForest(g)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.VerifyElimination(g); err != nil {
			t.Fatalf("trial %d: %v (graph %v)", trial, err, g)
		}
		if d := f.Depth(); d != td {
			t.Fatalf("trial %d: forest depth %d != treedepth %d", trial, d, td)
		}
	}
}

func TestDFSForestValidAndBounded(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	for trial := 0; trial < 25; trial++ {
		n := 2 + r.Intn(10)
		g := gen.RandomGNP(n, 0.35, r.Int63())
		f := DFSForest(g)
		if err := f.VerifyElimination(g); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		td, err := Exact(g)
		if err != nil {
			t.Fatal(err)
		}
		if d := f.Depth(); d > 1<<uint(td) {
			t.Fatalf("trial %d: DFS depth %d exceeds 2^td = %d", trial, d, 1<<uint(td))
		}
	}
}

func TestDFSForestDeterministic(t *testing.T) {
	g := gen.RandomGNP(12, 0.3, 99)
	a := DFSForest(g)
	b := DFSForest(g)
	for v := range a.Parent {
		if a.Parent[v] != b.Parent[v] {
			t.Fatal("DFSForest must be deterministic")
		}
	}
}

func TestCanonicalDecomposition(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 25; trial++ {
		n := 2 + r.Intn(10)
		g := gen.RandomGNP(n, 0.35, r.Int63())
		f := DFSForest(g)
		dec := CanonicalDecomposition(f)
		if err := dec.Verify(g); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if dec.Width() != f.Depth()-1 {
			t.Fatalf("trial %d: width %d != depth-1 %d", trial, dec.Width(), f.Depth()-1)
		}
	}
}

func TestDecompositionVerifyErrors(t *testing.T) {
	g := gen.Path(3)
	// Vertex 2 in no bag.
	d := &Decomposition{Parent: []int{-1, 0}, Bags: [][]int{{0}, {0, 1}}}
	if err := d.Verify(g); err == nil {
		t.Fatal("expected missing-vertex error")
	}
	// Edge {1,2} in no bag.
	d = &Decomposition{Parent: []int{-1, 0, 1}, Bags: [][]int{{0}, {0, 1}, {2}}}
	if err := d.Verify(g); err == nil {
		t.Fatal("expected missing-edge error")
	}
	// Vertex 0 in two disconnected bags.
	d = &Decomposition{Parent: []int{-1, 0, 1}, Bags: [][]int{{0, 1}, {1, 2}, {0, 2}}}
	if err := d.Verify(g); err == nil {
		t.Fatal("expected connectivity error")
	}
	// Bag vertex out of range.
	d = &Decomposition{Parent: []int{-1}, Bags: [][]int{{0, 7}}}
	if err := d.Verify(g); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

func TestCanonicalDecompositionOnTree(t *testing.T) {
	g := gen.CompleteBinaryTree(3) // 7 vertices
	td, f, err := ExactForest(g)
	if err != nil {
		t.Fatal(err)
	}
	if td != 3 {
		t.Fatalf("td(complete binary tree, 3 levels) = %d, want 3", td)
	}
	dec := CanonicalDecomposition(f)
	if err := dec.Verify(g); err != nil {
		t.Fatal(err)
	}
	if dec.Width() != 2 {
		t.Fatalf("width = %d, want 2", dec.Width())
	}
}
