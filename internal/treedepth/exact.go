package treedepth

import (
	"fmt"
	"math/bits"

	"repro/internal/graph"
)

// exactLimit bounds the exhaustive-search algorithm; beyond this the state
// space (all vertex subsets) is impractical.
const exactLimit = 20

// Exact computes the treedepth of g exactly using the recursive
// characterization of Lemma 2.2, memoized over vertex subsets. It returns
// ErrTooLarge for graphs with more than 20 vertices.
func Exact(g *graph.Graph) (int, error) {
	td, _, err := exact(g, false)
	return td, err
}

// ExactForest computes the treedepth of g and an optimal elimination forest
// witnessing it. It returns ErrTooLarge for graphs with more than 20
// vertices.
func ExactForest(g *graph.Graph) (int, *Forest, error) {
	return exact(g, true)
}

func exact(g *graph.Graph, wantForest bool) (int, *Forest, error) {
	n := g.NumVertices()
	if n > exactLimit {
		return 0, nil, fmt.Errorf("%w: n=%d > %d", ErrTooLarge, n, exactLimit)
	}
	if n == 0 {
		return 0, &Forest{Parent: nil}, nil
	}
	adj := make([]uint64, n)
	for _, e := range g.Edges() {
		adj[e.U] |= 1 << uint(e.V)
		adj[e.V] |= 1 << uint(e.U)
	}
	s := &exactSolver{adj: adj, n: n, memo: make(map[uint64]int), bestRoot: make(map[uint64]int)}
	full := uint64(1)<<uint(n) - 1
	td := s.solve(full)
	if !wantForest {
		return td, nil, nil
	}
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	s.reconstruct(full, -1, parent)
	return td, &Forest{Parent: parent}, nil
}

type exactSolver struct {
	adj      []uint64
	n        int
	memo     map[uint64]int // mask of a *connected* subgraph -> treedepth
	bestRoot map[uint64]int // mask -> optimal root vertex
}

// solve returns td(G[mask]) handling disconnected masks by taking the max
// over components (Lemma 2.2).
func (s *exactSolver) solve(mask uint64) int {
	if mask == 0 {
		return 0
	}
	max := 0
	for _, comp := range s.components(mask) {
		if d := s.solveConnected(comp); d > max {
			max = d
		}
	}
	return max
}

func (s *exactSolver) solveConnected(mask uint64) int {
	if bits.OnesCount64(mask) == 1 {
		return 1
	}
	if d, ok := s.memo[mask]; ok {
		return d
	}
	best := s.n + 1
	bestV := -1
	for m := mask; m != 0; m &= m - 1 {
		v := bits.TrailingZeros64(m)
		if d := 1 + s.solve(mask&^(1<<uint(v))); d < best {
			best = d
			bestV = v
		}
	}
	s.memo[mask] = best
	s.bestRoot[mask] = bestV
	return best
}

// components splits mask into connected components of G[mask].
func (s *exactSolver) components(mask uint64) []uint64 {
	var comps []uint64
	remaining := mask
	for remaining != 0 {
		seed := uint64(1) << uint(bits.TrailingZeros64(remaining))
		comp := seed
		frontier := seed
		for frontier != 0 {
			next := uint64(0)
			for f := frontier; f != 0; f &= f - 1 {
				v := bits.TrailingZeros64(f)
				next |= s.adj[v] & mask &^ comp
			}
			comp |= next
			frontier = next
		}
		comps = append(comps, comp)
		remaining &^= comp
	}
	return comps
}

// reconstruct fills the parent array for the elimination forest of G[mask],
// attaching component roots below attachTo (-1 for top level).
func (s *exactSolver) reconstruct(mask uint64, attachTo int, parent []int) {
	for _, comp := range s.components(mask) {
		var root int
		if bits.OnesCount64(comp) == 1 {
			root = bits.TrailingZeros64(comp)
		} else {
			// Ensure the memo entry exists (solve may not have been called on
			// this exact component during the optimal branch).
			s.solveConnected(comp)
			root = s.bestRoot[comp]
		}
		parent[root] = attachTo
		rest := comp &^ (1 << uint(root))
		if rest != 0 {
			s.reconstruct(rest, root, parent)
		}
	}
}

// DFSForest returns an elimination forest of g whose edges are all edges of
// g, built by depth-first search: every non-tree edge of an undirected DFS is
// a back edge, so the DFS forest is an elimination forest. By Lemma 2.5 its
// depth is at most 2^td(G). Roots are chosen as the minimum vertex of each
// component, and neighbors are explored in increasing order, making the
// construction deterministic.
func DFSForest(g *graph.Graph) *Forest {
	n := g.NumVertices()
	parent := make([]int, n)
	visited := make([]bool, n)
	for i := range parent {
		parent[i] = -1
	}
	var dfs func(u int)
	dfs = func(u int) {
		visited[u] = true
		for _, w := range g.Neighbors(u) {
			if !visited[w] {
				parent[w] = u
				dfs(w)
			}
		}
	}
	for v := 0; v < n; v++ {
		if !visited[v] {
			dfs(v)
		}
	}
	return &Forest{Parent: parent}
}
