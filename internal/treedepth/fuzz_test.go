package treedepth

import (
	"testing"

	"repro/internal/graph"
)

// decodeFuzzGraph turns an arbitrary byte string into a small graph: the
// first byte picks n in [1, 14] (small enough that the naive oracle answers
// in microseconds even on dense graphs), and every following byte selects
// one vertex pair by index into the lexicographic pair order. Duplicate
// bytes are ignored, so every input decodes to a valid simple graph.
func decodeFuzzGraph(data []byte) *graph.Graph {
	if len(data) == 0 {
		return graph.New(1)
	}
	n := 1 + int(data[0])%14
	g := graph.New(n)
	maxPairs := n * (n - 1) / 2
	for _, b := range data[1:] {
		if maxPairs == 0 {
			break
		}
		p := int(b) % maxPairs
		// Decode pair index p into (u, v) with u < v.
		u := 0
		for p >= n-1-u {
			p -= n - 1 - u
			u++
		}
		v := u + 1 + p
		if !g.HasEdge(u, v) {
			g.MustAddEdge(u, v)
		}
	}
	return g
}

// FuzzExactTreedepth cross-checks the branch-and-bound solver against the
// naive Lemma-2.2 oracle on arbitrary fuzz-generated graphs and validates
// every witness forest. Seed corpus: testdata/fuzz/FuzzExactTreedepth.
func FuzzExactTreedepth(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0})                                                   // K1
	f.Add([]byte{1, 0})                                                // P2
	f.Add([]byte{13, 0, 1, 2, 3, 4, 5})                                // sparse on 14 vertices
	f.Add([]byte{5, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14}) // K6
	f.Fuzz(func(t *testing.T, data []byte) {
		g := decodeFuzzGraph(data)
		want, _, err := exactNaive(g, false)
		if err != nil {
			t.Fatalf("oracle: %v", err)
		}
		got, forest, _, err := SolveExact(g, SolveOptions{})
		if err != nil {
			t.Fatalf("solver: %v", err)
		}
		if got != want {
			t.Fatalf("solver td=%d, oracle td=%d on %v", got, want, g)
		}
		if err := ValidateForest(g, forest, got); err != nil {
			t.Fatalf("witness: %v", err)
		}
	})
}
