package treedepth

import (
	"bytes"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"testing"

	"repro/internal/graph"
)

// The checked-in PACE instances under examples/pace encode their known
// optimal treedepth in the filename (`..._td<k>.gr`). Re-solving each one
// keeps the corpus honest and exercises the .gr reader on real files.
func TestPACEExampleInstances(t *testing.T) {
	dir := filepath.Join("..", "..", "examples", "pace")
	files, err := filepath.Glob(filepath.Join(dir, "*.gr"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 5 {
		t.Fatalf("expected at least 5 instances in %s, found %d", dir, len(files))
	}
	tdRe := regexp.MustCompile(`_td(\d+)\.gr$`)
	for _, path := range files {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			m := tdRe.FindStringSubmatch(path)
			if m == nil {
				t.Fatalf("filename does not declare its treedepth: %s", path)
			}
			want, err := strconv.Atoi(m[1])
			if err != nil {
				t.Fatal(err)
			}
			f, err := os.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			g, err := graph.ReadPACE(f)
			if err != nil {
				t.Fatal(err)
			}
			got, forest, _, err := SolveExact(g, SolveOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("solved td = %d, filename claims %d", got, want)
			}
			if err := ValidateForest(g, forest, got); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// Round-trip each instance through WritePACE and ReadPACE: the graph and the
// bytes themselves must be stable.
func TestPACEExampleRoundTrip(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "examples", "pace", "*.gr"))
	if err != nil || len(files) == 0 {
		t.Fatalf("glob: %v (%d files)", err, len(files))
	}
	for _, path := range files {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		g, err := graph.ReadPACE(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		var buf bytes.Buffer
		if err := graph.WritePACE(&buf, g); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), raw) {
			t.Fatalf("%s: re-encoding changed the bytes", path)
		}
	}
}
