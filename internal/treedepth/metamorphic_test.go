package treedepth

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/graph/gen"
)

// Metamorphic invariants of treedepth, pinned against the solver: each
// transformation has a known effect on the answer, so any drift is a solver
// bug even where no oracle exists.

func solveTD(t *testing.T, g *graph.Graph) int {
	t.Helper()
	td, f, _, err := SolveExact(g, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateForest(g, f, td); err != nil {
		t.Fatal(err)
	}
	return td
}

// Deleting an edge never increases treedepth (subgraph monotonicity).
func TestMetamorphicEdgeDeletionMonotone(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for trial := 0; trial < 40; trial++ {
		g := gen.RandomGNP(6+r.Intn(14), 0.3, r.Int63())
		if g.NumEdges() == 0 {
			continue
		}
		before := solveTD(t, g)
		// Rebuild without one random edge.
		drop := r.Intn(g.NumEdges())
		h := graph.New(g.NumVertices())
		for _, e := range g.Edges() {
			if e.ID != drop {
				h.MustAddEdge(e.U, e.V)
			}
		}
		after := solveTD(t, h)
		if after > before {
			t.Fatalf("trial %d: deleting edge %v raised td %d -> %d", trial, g.Edge(drop), before, after)
		}
	}
}

// td of a disjoint union is the max over the parts.
func TestMetamorphicDisjointUnionIsMax(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		a := gen.RandomGNP(4+r.Intn(12), 0.35, r.Int63())
		b := gen.RandomGNP(4+r.Intn(12), 0.2, r.Int63())
		c := gen.RandomTree(5+r.Intn(20), r.Int63())
		u, _ := gen.DisjointUnion(a, b, c)
		want := solveTD(t, a)
		if d := solveTD(t, b); d > want {
			want = d
		}
		if d := solveTD(t, c); d > want {
			want = d
		}
		if got := solveTD(t, u); got != want {
			t.Fatalf("trial %d: td(union) = %d, max(parts) = %d", trial, got, want)
		}
	}
}

// Closed forms: td(P_n) = ceil(log2(n+1)), td(K_n) = n, both far beyond the
// naive oracle's ceiling.
func TestMetamorphicClosedForms(t *testing.T) {
	for n := 1; n <= 80; n += 7 {
		if got, want := solveTD(t, gen.Path(n)), int(math.Ceil(math.Log2(float64(n+1)))); got != want {
			t.Fatalf("td(P%d) = %d, want %d", n, got, want)
		}
	}
	for n := 2; n <= 40; n += 5 {
		if got := solveTD(t, gen.Complete(n)); got != n {
			t.Fatalf("td(K%d) = %d, want %d", n, got, n)
		}
	}
	// td(C_n) = ceil(log2(n)) + 1.
	for n := 3; n <= 50; n += 4 {
		want := int(math.Ceil(math.Log2(float64(n)))) + 1
		if got := solveTD(t, gen.Cycle(n)); got != want {
			t.Fatalf("td(C%d) = %d, want %d", n, got, want)
		}
	}
}

// Treedepth is an isomorphism invariant: relabeling vertices by a seeded
// random permutation never changes the answer.
func TestMetamorphicIsomorphismInvariance(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	for trial := 0; trial < 25; trial++ {
		g := gen.RandomGNP(5+r.Intn(10), 0.25, r.Int63())
		want := solveTD(t, g)
		for _, permSeed := range []int64{r.Int63(), r.Int63()} {
			pr := rand.New(rand.NewSource(permSeed))
			perm := pr.Perm(g.NumVertices())
			h := graph.New(g.NumVertices())
			for _, e := range g.Edges() {
				h.MustAddEdge(perm[e.U], perm[e.V])
			}
			if got := solveTD(t, h); got != want {
				t.Fatalf("trial %d seed %d: td changed %d -> %d under relabeling", trial, permSeed, want, got)
			}
		}
	}
}

// Adding an apex vertex adjacent to everything increases treedepth by
// exactly one (root the apex above an optimal forest; conversely deleting
// it drops td by at most one).
func TestMetamorphicApexAddsOne(t *testing.T) {
	r := rand.New(rand.NewSource(44))
	for trial := 0; trial < 20; trial++ {
		n := 4 + r.Intn(12)
		g := gen.RandomGNP(n, 0.3, r.Int63())
		want := solveTD(t, g) + 1
		h := graph.New(n + 1)
		for _, e := range g.Edges() {
			h.MustAddEdge(e.U, e.V)
		}
		for v := 0; v < n; v++ {
			h.MustAddEdge(v, n)
		}
		if got := solveTD(t, h); got != want {
			t.Fatalf("trial %d: td(apex) = %d, want %d", trial, got, want)
		}
	}
}
