package treedepth

import (
	"math/rand"
	"sort"
	"testing"
)

func TestSetTrieBasics(t *testing.T) {
	tr := NewSetTrie()
	if tr.Len() != 0 {
		t.Fatal("new trie not empty")
	}
	if tr.Get([]int{1, 2}) != nil {
		t.Fatal("Get on empty trie")
	}
	e, created := tr.GetOrInsert([]int{1, 2, 5})
	if !created || tr.Len() != 1 {
		t.Fatalf("insert: created=%v len=%d", created, tr.Len())
	}
	e.lower, e.upper, e.root = 2, 3, 5
	// Exact key round-trips; prefixes, extensions, and siblings do not.
	if got := tr.Get([]int{1, 2, 5}); got == nil || got.lower != 2 || got.upper != 3 || got.root != 5 {
		t.Fatalf("Get = %+v", got)
	}
	for _, miss := range [][]int{{1, 2}, {1, 2, 5, 7}, {1, 3, 5}, {2, 5}, {}} {
		if tr.Get(miss) != nil {
			t.Fatalf("Get(%v) should miss", miss)
		}
	}
	// Re-inserting returns the same entry.
	e2, created := tr.GetOrInsert([]int{1, 2, 5})
	if created || e2 != e {
		t.Fatal("GetOrInsert must return the existing entry")
	}
	// A prefix of an existing key is a distinct set.
	p, created := tr.GetOrInsert([]int{1, 2})
	if !created || tr.Len() != 2 {
		t.Fatal("prefix insert")
	}
	p.lower = 7
	if got := tr.Get([]int{1, 2, 5}); got.lower != 2 {
		t.Fatal("prefix insert corrupted extension entry")
	}
}

// Entry pointers must stay valid as the trie grows past chunk boundaries.
func TestSetTrieStablePointersAcrossGrowth(t *testing.T) {
	tr := NewSetTrie()
	first, _ := tr.GetOrInsert([]int{0})
	first.lower = 42
	for i := 0; i < 3*trieChunkSize; i++ {
		e, _ := tr.GetOrInsert([]int{1, 2 + i})
		e.lower = int32(i)
	}
	if first.lower != 42 || tr.Get([]int{0}).lower != 42 {
		t.Fatal("entry pointer invalidated by growth")
	}
	if tr.Len() != 1+3*trieChunkSize {
		t.Fatalf("Len = %d", tr.Len())
	}
}

// Differential property test: the trie behaves exactly like a map keyed by
// the joined set, over random insert/lookup workloads.
func TestSetTrieVsMap(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	tr := NewSetTrie()
	ref := map[string]int32{}
	keyOf := func(key []int) string {
		b := make([]byte, 0, 2*len(key))
		for _, v := range key {
			b = append(b, byte(v), ',')
		}
		return string(b)
	}
	randomKey := func() []int {
		sz := r.Intn(8)
		seen := map[int]bool{}
		for len(seen) < sz {
			seen[r.Intn(20)] = true
		}
		key := make([]int, 0, sz)
		for v := range seen {
			key = append(key, v)
		}
		sort.Ints(key)
		return key
	}
	for i := 0; i < 5000; i++ {
		key := randomKey()
		if len(key) == 0 {
			continue
		}
		if r.Intn(2) == 0 {
			e, created := tr.GetOrInsert(key)
			if _, ok := ref[keyOf(key)]; ok == created {
				t.Fatalf("step %d: created=%v but ref has=%v for %v", i, created, ok, key)
			}
			if created {
				e.lower = int32(i)
				ref[keyOf(key)] = int32(i)
			} else if e.lower != ref[keyOf(key)] {
				t.Fatalf("step %d: entry %d != ref %d for %v", i, e.lower, ref[keyOf(key)], key)
			}
		} else {
			e := tr.Get(key)
			want, ok := ref[keyOf(key)]
			if (e != nil) != ok {
				t.Fatalf("step %d: presence mismatch for %v", i, key)
			}
			if ok && e.lower != want {
				t.Fatalf("step %d: value mismatch for %v", i, key)
			}
		}
	}
	if tr.Len() != len(ref) {
		t.Fatalf("Len = %d, ref = %d", tr.Len(), len(ref))
	}
}
