package congest

import (
	"bytes"
	"testing"

	"repro/internal/graph/gen"
)

// scriptInjector is a deterministic, table-driven FaultInjector for testing
// exact engine semantics: plans are keyed by (round, from, to) and crash
// windows by (round, vertex).
type scriptInjector struct {
	plans map[[3]int]FaultPlan
	downs map[[2]int]bool
}

func (s *scriptInjector) RunStart(n int)       {}
func (s *scriptInjector) RoundStart(round int) {}
func (s *scriptInjector) NodeDown(round, vertex int) bool {
	return s.downs[[2]int{round, vertex}]
}
func (s *scriptInjector) OnSend(round, from, to int) FaultPlan {
	return s.plans[[3]int{round, from, to}]
}

// chatterNode sends one 1-byte message carrying the round number on every
// port each round through lastRound, then halts. It records the payloads it
// receives and the round each one arrived in.
type chatterNode struct {
	lastRound int
	got       [][2]int // (arrival round, payload value)
	ran       []int    // rounds this node's program actually executed
}

func (c *chatterNode) Init(env *Env) []Outgoing {
	return []Outgoing{Broadcast(Message{0})}
}

func (c *chatterNode) Round(env *Env, inbox []Incoming) ([]Outgoing, bool) {
	c.ran = append(c.ran, env.Round)
	for _, in := range inbox {
		c.got = append(c.got, [2]int{env.Round, int(in.Payload[0])})
	}
	if env.Round >= c.lastRound {
		return nil, true
	}
	return []Outgoing{Broadcast(Message{byte(env.Round)})}, false
}

func runChatter(t *testing.T, opts Options, lastRound int) ([]*chatterNode, Stats) {
	t.Helper()
	g := gen.Path(2)
	sim, err := NewSimulator(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*chatterNode, 2)
	stats, err := sim.Run(func(v int) Node {
		nodes[v] = &chatterNode{lastRound: lastRound}
		return nodes[v]
	})
	if err != nil {
		t.Fatal(err)
	}
	return nodes, stats
}

func TestInjectorDrop(t *testing.T) {
	inj := &scriptInjector{plans: map[[3]int]FaultPlan{
		{2, 0, 1}: {Drop: true},
	}}
	nodes, stats := runChatter(t, Options{Injector: inj}, 4)
	// Node 1 receives node 0's init (round 0) and rounds 1, 3 payloads; the
	// round-2 payload was dropped.
	want := [][2]int{{1, 0}, {2, 1}, {4, 3}}
	if got := nodes[1].got; len(got) != len(want) {
		t.Fatalf("receiver got %v, want %v", got, want)
	} else {
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("receiver got %v, want %v", got, want)
			}
		}
	}
	if stats.Faults.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", stats.Faults.Dropped)
	}
}

func TestInjectorDelayParity(t *testing.T) {
	// Delay node 0's round-1 payload by 1, 2, and 3 rounds in separate runs:
	// it must arrive in round 2+d's inbox, after every on-time payload sent
	// in between — for both inbox-buffer parities.
	for _, d := range []int{1, 2, 3} {
		inj := &scriptInjector{plans: map[[3]int]FaultPlan{
			{1, 0, 1}: {Delay: d},
		}}
		nodes, stats := runChatter(t, Options{Injector: inj}, 6)
		gotRound := -1
		for _, g := range nodes[1].got {
			if g[1] == 1 {
				gotRound = g[0]
			}
		}
		if want := 2 + d; gotRound != want {
			t.Fatalf("delay %d: payload 1 arrived in round %d, want %d", d, gotRound, want)
		}
		if stats.Faults.Delayed != 1 {
			t.Fatalf("delay %d: Delayed = %d, want 1", d, stats.Faults.Delayed)
		}
	}
}

func TestInjectorDup(t *testing.T) {
	inj := &scriptInjector{plans: map[[3]int]FaultPlan{
		{1, 0, 1}: {Dup: 1},              // same-round duplicate
		{2, 0, 1}: {Dup: 1, DupDelay: 2}, // duplicate arrives two rounds late
	}}
	nodes, stats := runChatter(t, Options{Injector: inj}, 6)
	count := map[[2]int]int{}
	for _, g := range nodes[1].got {
		count[g]++
	}
	if count[[2]int{2, 1}] != 2 {
		t.Fatalf("round-1 payload copies in round 2 = %d, want 2 (immediate dup)", count[[2]int{2, 1}])
	}
	if count[[2]int{3, 2}] != 1 || count[[2]int{5, 2}] != 1 {
		t.Fatalf("round-2 payload must arrive once on time (round 3) and once delayed (round 5); got %v", nodes[1].got)
	}
	if stats.Faults.Duplicated != 2 || stats.Faults.Delayed != 1 {
		t.Fatalf("Faults = %+v, want Duplicated=2 Delayed=1", stats.Faults)
	}
}

func TestInjectorCrashRestart(t *testing.T) {
	// Node 1 is down in rounds 2 and 3: its program must not run, the
	// payload delivered for round 2 is lost from its inbox, payloads sent to
	// it during rounds 2 and 3 are lost in transit, and after restart it
	// resumes with its recorded state intact.
	inj := &scriptInjector{downs: map[[2]int]bool{
		{2, 1}: true,
		{3, 1}: true,
	}}
	nodes, stats := runChatter(t, Options{Injector: inj}, 6)
	for _, r := range nodes[1].ran {
		if r == 2 || r == 3 {
			t.Fatalf("down node executed in round %d (ran %v)", r, nodes[1].ran)
		}
	}
	// Node 1 sees rounds 0 (init, read in round 1) and 4, 5 payloads only:
	// payload 1 was pending when it crashed, payloads 2 and 3 arrived while
	// down.
	want := map[[2]int]bool{{1, 0}: true, {5, 4}: true, {6, 5}: true}
	for _, g := range nodes[1].got {
		if !want[g] {
			t.Fatalf("down node received %v (all: %v)", g, nodes[1].got)
		}
		delete(want, g)
	}
	if len(want) != 0 {
		t.Fatalf("missing post-restart deliveries %v (got %v)", want, nodes[1].got)
	}
	if stats.Faults.CrashRounds != 2 {
		t.Fatalf("CrashRounds = %d, want 2", stats.Faults.CrashRounds)
	}
	// Lost: the pending round-1 payload + the in-transit round-2 and
	// round-3 payloads.
	if stats.Faults.Lost != 3 {
		t.Fatalf("Lost = %d, want 3 (faults %+v)", stats.Faults.Lost, stats.Faults)
	}
}

func TestInjectorDelayedToHaltedIsLost(t *testing.T) {
	// Both nodes halt at round 2; a round-1 payload delayed by 5 rounds can
	// never be delivered.
	inj := &scriptInjector{plans: map[[3]int]FaultPlan{
		{1, 0, 1}: {Delay: 5},
	}}
	_, stats := runChatter(t, Options{Injector: inj}, 2)
	if stats.Faults.Delayed != 1 || stats.Faults.Lost != 1 {
		t.Fatalf("Faults = %+v, want Delayed=1 Lost=1", stats.Faults)
	}
}

// TestZeroInjectorTransparent is the engine half of the transparency
// property: an injector that plans nothing and downs nobody leaves stats and
// the full NDJSON trace byte-identical to a run with no injector at all,
// sequential or parallel.
func TestZeroInjectorTransparent(t *testing.T) {
	g, _ := gen.BoundedTreedepth(60, 3, 0.3, 7)
	run := func(opts Options) (Stats, []byte) {
		var buf bytes.Buffer
		tr := NewNDJSONTracer(&buf)
		opts.Tracer = tr
		sim, err := NewSimulator(g, opts)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := sim.Run(func(v int) Node { return &chatterNode{lastRound: 5} })
		if err != nil {
			t.Fatal(err)
		}
		if tr.Err() != nil {
			t.Fatal(tr.Err())
		}
		return stats, buf.Bytes()
	}
	baseStats, baseTrace := run(Options{})
	for _, opts := range []Options{
		{Injector: &scriptInjector{}},
		{Injector: &scriptInjector{}, Parallel: true, Workers: 4},
	} {
		stats, trace := run(opts)
		if stats != baseStats {
			t.Fatalf("stats with zero injector = %+v, want %+v", stats, baseStats)
		}
		if !bytes.Equal(trace, baseTrace) {
			t.Fatalf("NDJSON trace with zero injector differs from fault-free trace")
		}
	}
}
