package congest

import "sync"

// ScratchPool recycles the engine's per-run allocation-heavy state — halt
// flags, outboxes, the double-buffered inboxes, and the shards with their
// route buckets and payload arenas — across simulations. A long-running
// service answering many queries over same-shaped graphs pays the slice
// growth once and then runs allocation-flat; one-shot callers simply leave
// Options.Scratch nil.
//
// Pooling is transparent to results: every buffer is reset on acquire
// (payload memory is only valid during the run that produced it, per the
// Incoming contract), and the pool keys on the exact engine layout
// (n, shard size, max degree) so adopted buffers always fit.
type ScratchPool struct {
	mu    sync.Mutex
	cache map[scratchKey][]*engineScratch
	// perKey caps how many idle scratch sets are retained per layout;
	// overflow on release is dropped for the GC.
	perKey int
}

// DefaultScratchPerKey is how many idle scratch sets a pool retains per
// engine layout — enough for that many simultaneous same-shape runs to
// recycle without contention.
const DefaultScratchPerKey = 8

// NewScratchPool returns an empty pool. It is safe for concurrent use.
func NewScratchPool() *ScratchPool {
	return &ScratchPool{cache: make(map[scratchKey][]*engineScratch), perKey: DefaultScratchPerKey}
}

// scratchKey identifies an engine memory layout: buffers acquired under one
// key fit any run with the same vertex count, shard size, and maximum
// degree.
type scratchKey struct {
	n         int
	shardSize int
	maxDeg    int
}

// scratchLayout computes the buffer key for a run of n vertices. The shard
// count is independent of the execution mode (results never depend on it),
// sized for load balance at roughly 4 shards per worker with a floor of 16
// vertices per shard; newEngine derives its layout from this key, so pooled
// buffers and engine sharding always agree.
func (s *Simulator) scratchLayout(n int) scratchKey {
	workers := 1
	if s.opts.Parallel {
		workers = s.opts.workerCount()
	}
	nShards := 4 * workers
	if cap := (n + 15) / 16; nShards > cap {
		nShards = cap
	}
	if nShards < 1 {
		nShards = 1
	}
	shardSize := (n + nShards - 1) / nShards
	maxDeg := 0
	for v := 0; v < n; v++ {
		if d := s.csr.degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	return scratchKey{n: n, shardSize: shardSize, maxDeg: maxDeg}
}

// engineScratch is the recyclable slice state of one engine.
type engineScratch struct {
	key     scratchKey
	halted  []bool
	dones   []bool
	down    []bool
	outs    [][]Outgoing
	inboxes [2][][]Incoming
	shards  []*shard
}

// newEngineScratch allocates fresh buffers for a layout.
func newEngineScratch(key scratchKey) *engineScratch {
	n := key.n
	nShards := (n + key.shardSize - 1) / key.shardSize
	sc := &engineScratch{
		key:    key,
		halted: make([]bool, n),
		dones:  make([]bool, n),
		down:   make([]bool, n),
		outs:   make([][]Outgoing, n),
		shards: make([]*shard, nShards),
	}
	sc.inboxes[0] = make([][]Incoming, n)
	sc.inboxes[1] = make([][]Incoming, n)
	for i := range sc.shards {
		lo := i * key.shardSize
		hi := lo + key.shardSize
		if hi > n {
			hi = n
		}
		sc.shards[i] = &shard{
			lo: lo, hi: hi,
			active:   make([]int32, 0, hi-lo),
			routes:   make([][]routed, nShards),
			portBits: make([]int, key.maxDeg),
		}
	}
	return sc
}

// reset restores the scratch to its pre-run state, keeping every buffer's
// capacity: flags cleared, outboxes nil'd, inbox and route buckets
// truncated, arenas reclaimed, every vertex active again.
func (sc *engineScratch) reset() {
	for i := range sc.halted {
		sc.halted[i] = false
		sc.dones[i] = false
		sc.down[i] = false
		sc.outs[i] = nil
		sc.inboxes[0][i] = sc.inboxes[0][i][:0]
		sc.inboxes[1][i] = sc.inboxes[1][i][:0]
	}
	for _, sh := range sc.shards {
		sh.active = sh.active[:0]
		for v := sh.lo; v < sh.hi; v++ {
			sh.active = append(sh.active, int32(v))
		}
		for t := range sh.routes {
			sh.routes[t] = sh.routes[t][:0]
		}
		sh.arena[0] = sh.arena[0][:0]
		sh.arena[1] = sh.arena[1][:0]
		for p := range sh.portBits {
			sh.portBits[p] = 0
		}
		sh.touched = sh.touched[:0]
		sh.messages, sh.bits, sh.maxMsgBits, sh.haltedNow = 0, 0, 0, 0
		sh.err, sh.errV = nil, 0
	}
}

// acquire returns a reset scratch for the layout, reusing an idle one when
// available.
func (p *ScratchPool) acquire(key scratchKey) *engineScratch {
	p.mu.Lock()
	stack := p.cache[key]
	var sc *engineScratch
	if len(stack) > 0 {
		sc = stack[len(stack)-1]
		p.cache[key] = stack[:len(stack)-1]
	}
	p.mu.Unlock()
	if sc == nil {
		sc = newEngineScratch(key)
	}
	sc.reset()
	return sc
}

// release returns a scratch to the pool once its run has fully completed
// (beyond the per-key cap it is dropped for the GC).
func (p *ScratchPool) release(sc *engineScratch) {
	p.mu.Lock()
	if len(p.cache[sc.key]) < p.perKey {
		p.cache[sc.key] = append(p.cache[sc.key], sc)
	}
	p.mu.Unlock()
}

// Idle reports how many scratch sets are currently retained, across all
// layouts (diagnostics for /v1/stats).
func (p *ScratchPool) Idle() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	total := 0
	for _, stack := range p.cache {
		total += len(stack)
	}
	return total
}
