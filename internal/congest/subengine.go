package congest

import (
	"fmt"

	"repro/internal/congest/transport"
)

// SubEngine runs the engine's per-shard phases for one contiguous vertex
// range [lo, hi) of a K-way partition, with the route phase cut open at the
// process boundary: instead of writing into sibling shards' inboxes, the
// sub-engine emits validated, bucketed wire messages (EmitBatch) and
// ingests the coordinator's deterministic merge (Deliver). Every rule the
// in-process engine applies — port and bandwidth validation in
// sender-vertex order, the receiver-side drop rule for same-round halts,
// receiver-side stats accounting — is reproduced bit for bit, so a
// multi-process run is indistinguishable from a single-process one at any
// shard count (see engine.go for the determinism argument; the merge order
// contract is documented on Deliver).
//
// The phase sequence per round mirrors engine.stepRound:
//
//	Compute(r) -> EmitBatch(r) -> [wire] -> Deliver(r, merged) -> Compact(r)
//
// with RunInit standing in for Compute+EmitBatch in round 0.
type SubEngine struct {
	sim       *Simulator
	lo, hi    int // owned vertex range
	n         int
	shardSize int // ceil(n / shards): the wire partition, not scratchLayout's
	nShards   int
	bandwidth int
	unbounded bool
	withKinds bool // attach sender trace tags + sequence numbers to messages

	nodes         []Node // index v-lo
	envs          []*Env // index v-lo
	outs          [][]Outgoing
	halted, dones []bool
	active        []int32 // absolute vertex numbers, ascending

	// inboxes is double-buffered by round parity exactly like the engine's:
	// Deliver in round r fills inboxes[r&1], Compute in round r+1 reads it.
	inboxes [2][][]Incoming

	// routes[t] buffers this range's messages to shard t; arena holds the
	// payload copies. Both are reused across rounds and are only valid until
	// the next EmitBatch/RunInit call (the caller encodes them onto the wire
	// before advancing the round, so nothing outlives its bytes).
	routes [][]transport.Msg
	arena  []byte

	portBits []int
	touched  []int
	round    int
}

// NewSubEngine builds the sub-engine for shard `index` of a `shards`-way
// partition of sim's graph. factory receives absolute vertex indices, like
// Simulator.Run's. withKinds turns on per-message trace metadata (sender
// tag + emission sequence number) for the coordinator's trace merge.
func NewSubEngine(sim *Simulator, shards, index int, factory func(vertex int) Node, withKinds bool) (*SubEngine, error) {
	n := sim.g.NumVertices()
	if shards < 1 {
		return nil, fmt.Errorf("congest: shard count must be >= 1, got %d", shards)
	}
	if index < 0 || index >= shards {
		return nil, fmt.Errorf("congest: shard index %d out of range [0,%d)", index, shards)
	}
	shardSize := (n + shards - 1) / shards
	lo := index * shardSize
	hi := lo + shardSize
	if lo > n {
		lo = n
	}
	if hi > n {
		hi = n
	}
	se := &SubEngine{
		sim:       sim,
		lo:        lo,
		hi:        hi,
		n:         n,
		shardSize: shardSize,
		nShards:   shards,
		bandwidth: sim.opts.bandwidth(n),
		unbounded: sim.opts.Unbounded,
		withKinds: withKinds,
	}
	size := hi - lo
	se.nodes = make([]Node, size)
	se.envs = sim.buildEnvs(lo, hi, se.bandwidth)
	se.outs = make([][]Outgoing, size)
	se.halted = make([]bool, size)
	se.dones = make([]bool, size)
	se.active = make([]int32, 0, size)
	maxDeg := 0
	for v := lo; v < hi; v++ {
		se.nodes[v-lo] = factory(v)
		se.active = append(se.active, int32(v))
		if d := se.sim.csr.degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	se.inboxes[0] = make([][]Incoming, size)
	se.inboxes[1] = make([][]Incoming, size)
	se.routes = make([][]transport.Msg, shards)
	se.portBits = make([]int, maxDeg)
	se.touched = make([]int, 0, maxDeg)
	return se, nil
}

// Bandwidth returns the per-edge per-round budget in bits.
func (se *SubEngine) Bandwidth() int { return se.bandwidth }

// Range returns the owned vertex range [lo, hi).
func (se *SubEngine) Range() (lo, hi int) { return se.lo, se.hi }

// Node returns the node program of an owned vertex.
func (se *SubEngine) Node(v int) Node { return se.nodes[v-se.lo] }

// shardOf maps a vertex to its wire shard (the K-way partition).
func (se *SubEngine) shardOf(v int32) int { return int(v) / se.shardSize }

// checkedSize is engine.checkedSize for the sub-engine: the single-message
// cap first, then the aggregate per-(sender, port) per-round cap. The error
// text is identical, so cross-process and in-process failures match.
func (se *SubEngine) checkedSize(v int32, p, payloadLen int) (int, error) {
	sizeBits := 8 * payloadLen
	if se.unbounded {
		return sizeBits, nil
	}
	if sizeBits > se.bandwidth {
		return 0, fmt.Errorf("%w: %d bits > %d-bit budget (node %d, port %d)",
			ErrMessageTooLarge, sizeBits, se.bandwidth, se.sim.ids[v], p)
	}
	if se.portBits[p] == 0 {
		se.touched = append(se.touched, p)
	}
	se.portBits[p] += sizeBits
	if se.portBits[p] > se.bandwidth {
		return 0, fmt.Errorf("%w: %d bits in one round > %d-bit budget (node %d, port %d)",
			ErrBandwidthExceeded, se.portBits[p], se.bandwidth, se.sim.ids[v], p)
	}
	return sizeBits, nil
}

// emit validates one sender's outbox in emission order and buckets the
// messages by receiver shard, copying payloads into the round arena. It is
// senderShard's per-vertex body with the inbox write replaced by a wire
// bucket; validation order and error values are identical.
func (se *SubEngine) emit(v int32, out []Outgoing) error {
	defer resetPortBits(se.portBits, &se.touched)
	csr := se.sim.csr
	base := csr.off[v]
	deg := int(csr.off[v+1] - base)
	kind := ""
	if se.withKinds {
		kind = se.envs[int(v)-se.lo].kind
	}
	seq := int32(0)
	for _, o := range out {
		lo, hi := o.Port, o.Port+1
		if o.Port == -1 {
			lo, hi = 0, deg
		}
		for p := lo; p < hi; p++ {
			if p < 0 || p >= deg {
				return fmt.Errorf("congest: node %d sent to invalid port %d", se.sim.ids[v], p)
			}
			if _, err := se.checkedSize(v, p, len(o.Payload)); err != nil {
				return err
			}
			w := csr.nbr[base+int32(p)]
			start := len(se.arena)
			se.arena = append(se.arena, o.Payload...)
			t := se.shardOf(w)
			se.routes[t] = append(se.routes[t], transport.Msg{
				From: v, To: w, Port: csr.back[base+int32(p)], Seq: seq,
				Kind: kind, Payload: se.arena[start:len(se.arena):len(se.arena)],
			})
			seq++
		}
	}
	return nil
}

// resetRoutes clears the per-round buckets and arena.
func (se *SubEngine) resetRoutes() {
	se.arena = se.arena[:0]
	for t := range se.routes {
		se.routes[t] = se.routes[t][:0]
	}
}

// RunInit executes round 0: Init on every owned vertex in ascending order,
// each outbox validated and bucketed immediately — so a validation failure
// at vertex v surfaces before any later vertex runs Init, exactly like the
// engine's serial init phase. On failure the offending vertex is returned
// for the coordinator's lowest-vertex error merge. The buckets are valid
// until the next EmitBatch/RunInit call.
func (se *SubEngine) RunInit() (sub [][]transport.Msg, errVertex int, err error) {
	se.round = 0
	se.resetRoutes()
	for v := se.lo; v < se.hi; v++ {
		env := se.envs[v-se.lo]
		env.Round = 0
		out := se.nodes[v-se.lo].Init(env)
		if err := se.emit(int32(v), out); err != nil {
			return nil, v, err
		}
	}
	return se.routes, -1, nil
}

// Compute runs the node programs of the still-active owned vertices for the
// given round, consuming the inboxes Deliver filled in round-1.
func (se *SubEngine) Compute(round int) {
	se.round = round
	readGen := (round + 1) & 1
	inboxes := se.inboxes[readGen]
	for _, v := range se.active {
		i := int(v) - se.lo
		env := se.envs[i]
		env.Round = round
		inbox := inboxes[i]
		sortInbox(inbox)
		se.outs[i], se.dones[i] = se.nodes[i].Round(env, inbox)
		inboxes[i] = inbox[:0]
	}
}

// EmitBatch validates the round's outboxes in sender-vertex order and
// returns them bucketed by receiver shard. On a validation failure it
// returns the offending vertex (the coordinator keeps the globally lowest
// one, matching engine.firstError) and the engine's error value. The
// buckets are valid until the next EmitBatch/RunInit call.
func (se *SubEngine) EmitBatch(round int) (sub [][]transport.Msg, errVertex int, err error) {
	se.resetRoutes()
	for _, v := range se.active {
		i := int(v) - se.lo
		out := se.outs[i]
		if len(out) == 0 {
			continue
		}
		se.outs[i] = nil
		if err := se.emit(v, out); err != nil {
			return nil, int(v), err
		}
	}
	return se.routes, -1, nil
}

// DeliverStats is what one Deliver call contributed: the same per-round
// counters engine.receiverShard accumulates for this shard, plus delayed
// copies lost to halted receivers and the receiver-observed trace events
// (withKinds only).
type DeliverStats struct {
	Messages   int64
	Bits       int64
	MaxMsgBits int
	Lost       int64
	Events     []transport.Event
}

// Deliver ingests the coordinator's merge for this receiver shard in round
// `round`: first the fault-delayed copies due this round (dropped only if
// the receiver already halted — engine.flushDelayed's rule), then the
// round's normal traffic, which MUST be concatenated over sender shards in
// shard-index order (global sender-vertex order). The normal-traffic drop
// rule is the engine's receiver-side rule verbatim: a message is dropped,
// uncounted, if the receiver halted in an earlier round or halts this round
// and precedes the sender in vertex order.
//
// Message payloads alias the caller's buffers; like engine inboxes they are
// valid only until the node's next Round call, which is the documented
// contract node programs already obey.
func (se *SubEngine) Deliver(round int, delayed, msgs []transport.Msg) (DeliverStats, error) {
	var ds DeliverStats
	gen := round & 1
	inboxes := se.inboxes[gen]
	for _, m := range delayed {
		i, err := se.checkMsg(m)
		if err != nil {
			return ds, err
		}
		if se.halted[i] {
			ds.Lost++
			continue
		}
		inboxes[i] = append(inboxes[i], Incoming{Port: int(m.Port), Payload: Message(m.Payload)})
		sizeBits := 8 * len(m.Payload)
		ds.Messages++
		ds.Bits += int64(sizeBits)
		if sizeBits > ds.MaxMsgBits {
			ds.MaxMsgBits = sizeBits
		}
	}
	for _, m := range msgs {
		i, err := se.checkMsg(m)
		if err != nil {
			return ds, err
		}
		if se.halted[i] || (se.dones[i] && m.To < m.From) {
			continue
		}
		inboxes[i] = append(inboxes[i], Incoming{Port: int(m.Port), Payload: Message(m.Payload)})
		sizeBits := 8 * len(m.Payload)
		ds.Messages++
		ds.Bits += int64(sizeBits)
		if sizeBits > ds.MaxMsgBits {
			ds.MaxMsgBits = sizeBits
		}
		if se.withKinds {
			ds.Events = append(ds.Events, transport.Event{
				From: m.From, Seq: m.Seq, To: m.To, Port: m.Port,
				Bits: int32(sizeBits), Kind: m.Kind,
			})
		}
	}
	return ds, nil
}

// checkMsg bounds-checks a wire message against the topology before any
// slice indexing, so a corrupt or hostile frame yields an error instead of
// a panic. Returns the receiver's local index.
func (se *SubEngine) checkMsg(m transport.Msg) (int, error) {
	if m.To < int32(se.lo) || m.To >= int32(se.hi) {
		return 0, fmt.Errorf("congest: delivered message for vertex %d outside shard range [%d,%d)", m.To, se.lo, se.hi)
	}
	if m.From < 0 || m.From >= int32(se.n) {
		return 0, fmt.Errorf("congest: delivered message from invalid vertex %d", m.From)
	}
	if m.Port < 0 || int(m.Port) >= se.sim.csr.degree(int(m.To)) {
		return 0, fmt.Errorf("congest: delivered message for vertex %d on invalid port %d", m.To, m.Port)
	}
	return int(m.To) - se.lo, nil
}

// Compact marks the owned vertices that halted this round, removes them
// from the active list, and returns them in ascending vertex order (the
// coordinator's halt-trace and termination input).
func (se *SubEngine) Compact(round int) []int32 {
	var haltedNow []int32
	for _, v := range se.active {
		i := int(v) - se.lo
		if se.dones[i] && !se.halted[i] {
			se.halted[i] = true
			haltedNow = append(haltedNow, v)
		}
	}
	if len(haltedNow) == 0 {
		return nil
	}
	k := 0
	for _, v := range se.active {
		if !se.halted[int(v)-se.lo] {
			se.active[k] = v
			k++
		}
	}
	se.active = se.active[:k]
	return haltedNow
}

// buildEnvs builds the node-local views for vertices [lo, hi) on flat
// arenas, exactly as a full-simulation run does (see startRun): one Env per
// vertex, port-indexed fields sliced from range-wide backing arrays, label
// maps materialized only when the graph carries labels.
func (s *Simulator) buildEnvs(lo, hi, bandwidth int) []*Env {
	n := s.g.NumVertices()
	base := s.csr.off[lo]
	ports := int(s.csr.off[hi] - base)
	envs := make([]*Env, hi-lo)
	envArr := make([]Env, hi-lo)
	nbrIDArena := make([]int, ports)
	weightArena := make([]int64, ports)
	labelArena := make([]map[string]bool, ports)
	vertexLabelNames := s.g.VertexLabelNames()
	edgeLabelNames := s.g.EdgeLabelNames()
	for v := lo; v < hi; v++ {
		plo, phi := s.csr.off[v]-base, s.csr.off[v+1]-base
		nbrIDs := nbrIDArena[plo:phi:phi]
		portWeight := weightArena[plo:phi:phi]
		portLabels := labelArena[plo:phi:phi]
		for p := int32(0); p < phi-plo; p++ {
			nbrIDs[p] = s.ids[s.csr.nbr[base+plo+p]]
			eid := int(s.csr.edge[base+plo+p])
			portWeight[p] = s.g.EdgeWeight(eid)
			if len(edgeLabelNames) > 0 {
				labels := make(map[string]bool, len(edgeLabelNames))
				for _, name := range edgeLabelNames {
					if s.g.HasEdgeLabel(name, eid) {
						labels[name] = true
					}
				}
				portLabels[p] = labels
			}
		}
		var labels map[string]bool
		if len(vertexLabelNames) > 0 {
			labels = make(map[string]bool, len(vertexLabelNames))
			for _, name := range vertexLabelNames {
				if s.g.HasVertexLabel(name, v) {
					labels[name] = true
				}
			}
		}
		envArr[v-lo] = Env{
			ID:          s.ids[v],
			Degree:      int(phi - plo),
			NeighborIDs: nbrIDs,
			Bandwidth:   bandwidth,
			N:           n,
			Weight:      s.g.VertexWeight(v),
			Labels:      labels,
			PortWeight:  portWeight,
			PortLabels:  portLabels,
		}
		envs[v-lo] = &envArr[v-lo]
	}
	return envs
}
