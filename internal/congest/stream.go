package congest

import "encoding/binary"

// ByteStreamSender turns logical messages of arbitrary size into a sequence
// of frames that each fit the per-edge per-round bandwidth. Sending a k-bit
// logical message therefore costs ceil(k/B) rounds on an edge with B-bit
// bandwidth, exactly the Θ(k/log n) accounting of the paper.
//
// The zero value is ready to use.
type ByteStreamSender struct {
	buf []byte
}

// Push enqueues a logical message (length-prefixed on the wire).
func (s *ByteStreamSender) Push(msg []byte) {
	var length [4]byte
	binary.LittleEndian.PutUint32(length[:], uint32(len(msg)))
	s.buf = append(s.buf, length[:]...)
	s.buf = append(s.buf, msg...)
}

// NextFrame pops the next frame of at most budgetBytes bytes, or ok=false
// when nothing is pending. The frame aliases the sender's buffer rather
// than copying: Push only ever appends past the buffer's absolute end, so a
// popped region is never rewritten and the view stays stable for the
// sender's lifetime. (The simulator copies frame bytes into its delivery
// arena at route time anyway; skipping the copy here makes the per-round
// sender path allocation-free.)
func (s *ByteStreamSender) NextFrame(budgetBytes int) (Message, bool) {
	if len(s.buf) == 0 {
		return nil, false
	}
	if budgetBytes < 1 {
		budgetBytes = 1
	}
	n := budgetBytes
	if n > len(s.buf) {
		n = len(s.buf)
	}
	frame := Message(s.buf[:n:n])
	s.buf = s.buf[n:]
	return frame, true
}

// Pending reports whether bytes remain queued.
func (s *ByteStreamSender) Pending() bool { return len(s.buf) > 0 }

// ByteStreamReceiver reassembles logical messages from in-order frames.
// The zero value is ready to use.
type ByteStreamReceiver struct {
	buf []byte
}

// Feed appends a received frame.
func (r *ByteStreamReceiver) Feed(frame Message) {
	r.buf = append(r.buf, frame...)
}

// Pop extracts the next complete logical message, or ok=false if none is
// complete yet.
func (r *ByteStreamReceiver) Pop() ([]byte, bool) {
	if len(r.buf) < 4 {
		return nil, false
	}
	length := int(binary.LittleEndian.Uint32(r.buf[:4]))
	if len(r.buf) < 4+length {
		return nil, false
	}
	msg := append([]byte(nil), r.buf[4:4+length]...)
	r.buf = r.buf[4+length:]
	return msg, true
}

// FrameBudgetBytes converts a bandwidth in bits to a frame budget in whole
// bytes (at least 1).
func FrameBudgetBytes(bandwidthBits int) int {
	b := bandwidthBits / 8
	if b < 1 {
		b = 1
	}
	return b
}
