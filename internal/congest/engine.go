package congest

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
)

// This file is the simulator's execution engine: a sharded pipeline that
// runs node programs and routes their messages round by round.
//
// Vertices are partitioned into contiguous shards. Each round proceeds in
// phases separated by barriers:
//
//  1. compute:  every shard runs Round() for its active (non-halted)
//     vertices and records their outboxes.
//  2. route:    sender shards validate outboxes (port range, single-message
//     size, and the aggregate per-(sender, port) bandwidth cap), copy
//     payloads into a per-shard arena, and bucket them by receiver shard;
//     receiver shards then merge their buckets in sender-shard order —
//     which, because shards are contiguous vertex ranges, is exactly
//     global sender-vertex order. Sequential and parallel execution are
//     therefore bit-identical, for any worker or shard count.
//  3. halt:     newly halted vertices are removed from the active lists, so
//     late rounds touch only the vertices still running.
//
// When Options.Parallel is set the per-shard phases execute on a persistent
// worker pool (spawned once per run, not per round); otherwise they run
// inline on the same code path. When a Tracer is installed or fault
// injection is active, routing falls back to a single serial pass in
// sender-vertex order so that trace events and the corruption RNG observe
// the exact, documented delivery order (node programs still run sharded).
//
// Hot-path allocations are avoided by reusing inboxes and payload arenas:
// both are double-buffered by round parity, because messages delivered in
// round r are read by node programs in round r+1 while round r+1's sends
// are being written.

// routed is one validated message en route to a receiver vertex.
type routed struct {
	from    int32 // sender vertex
	to      int32 // receiver vertex
	port    int32 // receiver port
	payload Message
}

// delayedMsg is a validated message an injector deferred: it leaves the
// shared arena (the copy is owned) and is flushed into the inbox generation
// of its due round.
type delayedMsg struct {
	due     int
	from    int32
	to      int32
	port    int32
	payload []byte
}

// shard owns a contiguous vertex range [lo, hi) and all per-shard scratch.
type shard struct {
	lo, hi int
	// active lists the shard's non-halted vertices in ascending order.
	active []int32
	// routes[t] buffers messages from this (sender) shard to receiver
	// shard t, in sender-vertex order; reused across rounds.
	routes [][]routed
	// arena holds payload copies, double-buffered by round parity: slices
	// handed out for round r stay valid while round r+1 writes the other
	// half. Reallocation on growth is safe — previously handed-out slices
	// keep pointing at the old backing array.
	arena [2][]byte
	// portBits/touched implement the aggregate per-(sender, port) bandwidth
	// accounting; portBits is degree-indexed scratch reset via touched
	// after each sender.
	portBits []int
	touched  []int
	// Per-round accumulators, folded into Stats after each route phase.
	messages   int64
	bits       int64
	maxMsgBits int
	haltedNow  int
	// First validation error in this shard (lowest sender vertex wins).
	err  error
	errV int
}

// workerPool runs numbered tasks on a fixed set of goroutines spawned once.
type workerPool struct {
	tasks chan int
	fn    func(int)
	wg    sync.WaitGroup
}

func newWorkerPool(workers, queue int) *workerPool {
	p := &workerPool{tasks: make(chan int, queue)}
	for i := 0; i < workers; i++ {
		//lint:ignore dmclint/gorolife workers live for the pool's lifetime; close(tasks) ends them and forEach joins every batch through wg
		//lint:ignore dmclint/ctxflow the engine closes tasks when the run ends, so the range always terminates
		go func() {
			for idx := range p.tasks {
				p.fn(idx)
				p.wg.Done()
			}
		}()
	}
	return p
}

// forEach runs fn(0..nTasks-1) on the pool and waits for completion. The
// assignment to p.fn is safe: workers only read it after receiving from the
// channel, and the previous batch has fully drained (wg.Wait) before the
// next assignment.
func (p *workerPool) forEach(nTasks int, fn func(int)) {
	p.fn = fn
	p.wg.Add(nTasks)
	for i := 0; i < nTasks; i++ {
		//lint:ignore dmclint/ctxflow queue capacity equals the task count per batch, so the send never blocks
		p.tasks <- i
	}
	//lint:ignore dmclint/ctxflow workers drain a bounded batch; the engine polls ctx at the round barrier around each forEach
	p.wg.Wait()
}

func (p *workerPool) close() { close(p.tasks) }

type engine struct {
	s         *Simulator
	n         int
	bandwidth int
	limit     int
	unbounded bool

	nodes []Node
	envs  []*Env

	halted      []bool
	dones       []bool
	haltedCount int
	outs        [][]Outgoing

	// inboxes is double-buffered by round parity: delivery in round r fills
	// inboxes[r%2], which node programs read (and truncate) in round r+1.
	inboxes [2][][]Incoming

	shards    []*shard
	shardSize int
	pool      *workerPool // nil when running inline

	round  int
	stats  Stats
	trace  traceSink
	faults *rand.Rand

	// ctx, when non-nil, is polled at every round barrier.
	ctx context.Context
	// scratch owns the recyclable buffers above. The engine borrows it for
	// one run; Simulator.Run acquires it (from the configured pool or fresh)
	// and releases it, so pooled ownership never crosses into engine code.
	scratch *engineScratch

	// Fault-injection state (nil/empty unless Options.Injector is set).
	inj     FaultInjector
	down    []bool // vertex -> crashed this round
	delayed []delayedMsg

	// Phase closures, allocated once so the round loop allocates nothing.
	computeFn  func(int)
	senderFn   func(int)
	receiverFn func(int)
	compactFn  func(int)
}

func newEngine(s *Simulator, nodes []Node, envs []*Env, bandwidth int, scratch *engineScratch) *engine {
	n := len(nodes)
	limit := s.opts.RoundLimit
	if limit == 0 {
		limit = DefaultRoundLimit
	}
	e := &engine{
		s:         s,
		n:         n,
		bandwidth: bandwidth,
		limit:     limit,
		unbounded: s.opts.Unbounded,
		nodes:     nodes,
		envs:      envs,
		trace:     newTraceSink(s.opts.Tracer),
		ctx:       s.opts.Context,
	}
	if s.opts.CorruptProb > 0 {
		e.faults = rand.New(rand.NewSource(s.opts.CorruptSeed))
	}

	// The shard layout was fixed by the scratch key (see scratchLayout);
	// whether the buffers came from a pool or a fresh allocation, the engine
	// code path is identical.
	e.shardSize = scratch.key.shardSize
	nShards := (n + e.shardSize - 1) / e.shardSize
	e.scratch = scratch
	e.halted = e.scratch.halted
	e.dones = e.scratch.dones
	e.outs = e.scratch.outs
	e.inboxes = e.scratch.inboxes
	e.shards = e.scratch.shards
	if s.opts.Injector != nil {
		e.inj = s.opts.Injector
		e.down = e.scratch.down
	}

	if s.opts.Parallel && nShards > 1 {
		if workers := s.opts.workerCount(); workers > 1 {
			if workers > nShards {
				workers = nShards
			}
			e.pool = newWorkerPool(workers, nShards)
		}
	}
	e.computeFn = e.computeShard
	e.senderFn = e.senderShard
	e.receiverFn = e.receiverShard
	e.compactFn = e.compactShard
	return e
}

// forEach dispatches one task per shard, on the pool or inline.
func (e *engine) forEach(fn func(int)) {
	if e.pool != nil {
		e.pool.forEach(len(e.shards), fn)
		return
	}
	for i := range e.shards {
		fn(i)
	}
}

func (e *engine) shardOf(v int32) int { return int(v) / e.shardSize }

// serialRoute reports whether routing must happen in one serial pass:
// tracers observe sends in sender-vertex order, and the fault RNG and the
// injector's OnSend stream must be consumed in that same order to stay
// deterministic.
func (e *engine) serialRoute() bool { return e.trace.enabled() || e.faults != nil || e.inj != nil }

// run drives the simulation to completion. The phases are split out
// (initPhase / stepRound / finish) so the allocation-regression tests can
// drive the steady-state round loop directly under testing.AllocsPerRun.
func (e *engine) run() (Stats, error) {
	if e.pool != nil {
		defer e.pool.close()
	}
	if err := e.initPhase(); err != nil {
		e.trace.runEnd(e.stats)
		return e.stats, err
	}
	for e.haltedCount < e.n {
		if err := e.stepRound(); err != nil {
			e.trace.runEnd(e.stats)
			return e.stats, err
		}
	}
	return e.finish()
}

// initPhase runs round 0: Init on every node, delivered serially (like the
// delivery contract), after announcing the run to the tracer and injector.
func (e *engine) initPhase() error {
	e.stats = Stats{Bandwidth: e.bandwidth}
	e.round = 0
	e.trace.runStart(RunInfo{N: e.n, Edges: e.s.g.NumEdges(), Bandwidth: e.bandwidth})
	if e.inj != nil {
		e.inj.RunStart(e.n)
	}
	e.trace.roundStart(0)
	for v := 0; v < e.n; v++ {
		e.envs[v].Round = 0
		out := e.nodes[v].Init(e.envs[v])
		if err := e.deliverSerial(int32(v), out); err != nil {
			return err
		}
	}
	e.trace.roundEnd(0, e.n, 0)
	return nil
}

// stepRound advances the simulation by one round: compute, route, compact.
// In steady state (no tracer, no faults, buffers warmed up) it performs no
// heap allocations — pinned by TestEngineSteadyStateZeroAllocs.
func (e *engine) stepRound() error {
	round := e.round + 1
	if e.ctx != nil {
		if err := e.ctx.Err(); err != nil {
			return fmt.Errorf("%w: %w", ErrCanceled, err)
		}
	}
	if round > e.limit {
		return fmt.Errorf("%w: %d rounds", ErrRoundLimit, e.limit)
	}
	e.stats.Rounds = round
	e.round = round
	e.trace.roundStart(round)

	if e.inj != nil {
		e.inj.RoundStart(round)
		e.updateDown()
	}

	e.forEach(e.computeFn)

	if e.serialRoute() {
		if err := e.routeSerialPass(); err != nil {
			return err
		}
	} else {
		e.forEach(e.senderFn)
		if err := e.firstError(); err != nil {
			e.foldStats()
			return err
		}
		e.forEach(e.receiverFn)
		e.foldStats()
	}

	e.forEach(e.compactFn)
	for _, sh := range e.shards {
		e.haltedCount += sh.haltedNow
		sh.haltedNow = 0
	}
	e.trace.roundEnd(round, e.n-e.haltedCount, e.haltedCount)
	return nil
}

// finish settles end-of-run accounting once every node has halted.
func (e *engine) finish() (Stats, error) {
	// Delayed copies still queued when every node has halted can never be
	// delivered.
	if len(e.delayed) > 0 {
		e.stats.Faults.Lost += int64(len(e.delayed))
		e.delayed = e.delayed[:0]
	}
	e.stats.HaltedNodes = e.haltedCount
	e.trace.runEnd(e.stats)
	return e.stats, nil
}

// updateDown refreshes the crash set at the top of a round: a down vertex
// skips its node program, and whatever was waiting in its inbox is lost. The
// pass runs serially before the (possibly sharded) compute phase, so the
// injector's crash decisions are consumed in a deterministic order and the
// down slice is read-only while workers run.
func (e *engine) updateDown() {
	readGen := (e.round + 1) & 1
	inboxes := e.inboxes[readGen]
	for v := 0; v < e.n; v++ {
		if e.halted[v] {
			continue
		}
		d := e.inj.NodeDown(e.round, v)
		if d {
			e.stats.Faults.CrashRounds++
			if !e.down[v] {
				e.trace.fault(FaultEvent{Round: e.round, Kind: "crash", FromID: e.s.ids[v]})
			}
			if pending := len(inboxes[v]); pending > 0 {
				e.stats.Faults.Lost += int64(pending)
				inboxes[v] = inboxes[v][:0]
			}
		} else if e.down[v] {
			e.trace.fault(FaultEvent{Round: e.round, Kind: "restart", FromID: e.s.ids[v]})
		}
		e.down[v] = d
	}
}

// computeShard runs the node programs of one shard's active vertices.
func (e *engine) computeShard(si int) {
	sh := e.shards[si]
	readGen := (e.round + 1) & 1 // == (round-1)&1: filled two phases ago
	inboxes := e.inboxes[readGen]
	for _, v := range sh.active {
		if e.down != nil && e.down[v] {
			// Crashed this round: the program does not run (updateDown has
			// already discarded the pending inbox).
			inboxes[v] = inboxes[v][:0]
			continue
		}
		env := e.envs[v]
		env.Round = e.round
		inbox := inboxes[v]
		sortInbox(inbox)
		e.outs[v], e.dones[v] = e.nodes[v].Round(env, inbox)
		// The inbox buffer is refilled by next round's delivery; truncate
		// now that the node has consumed it.
		inboxes[v] = inbox[:0]
	}
}

// sortInbox orders an inbox by Port, stably: messages sharing a port keep
// their send order. Both delivery paths append in global sender-vertex
// order, and a receiver's ports ascend with its (sorted) neighbor vertices,
// so inboxes arrive already sorted — the scan below confirms that for free,
// without the closure allocation of sort.SliceStable. Out-of-order entries
// only occur when a fault injector flushes delayed copies ahead of the
// round's normal traffic (the small, serial path); the stable insertion
// sort covers that case in place.
func sortInbox(inbox []Incoming) {
	for i := 1; i < len(inbox); i++ {
		if inbox[i].Port >= inbox[i-1].Port {
			continue
		}
		for ; i < len(inbox); i++ {
			for j := i; j > 0 && inbox[j].Port < inbox[j-1].Port; j-- {
				inbox[j], inbox[j-1] = inbox[j-1], inbox[j]
			}
		}
		return
	}
}

// checkedSize validates one message from v on port p against the per-edge
// budget: the single-message cap first (ErrMessageTooLarge, as before), then
// the aggregate per-(sender, port) per-round cap (ErrBandwidthExceeded).
// portBits must be v's zeroed scratch; touched collects dirtied ports.
func (e *engine) checkedSize(v int32, p int, payloadLen int, portBits []int, touched *[]int) (int, error) {
	sizeBits := 8 * payloadLen
	if e.unbounded {
		return sizeBits, nil
	}
	if sizeBits > e.bandwidth {
		return 0, fmt.Errorf("%w: %d bits > %d-bit budget (node %d, port %d)",
			ErrMessageTooLarge, sizeBits, e.bandwidth, e.s.ids[v], p)
	}
	if portBits[p] == 0 {
		*touched = append(*touched, p)
	}
	portBits[p] += sizeBits
	if portBits[p] > e.bandwidth {
		return 0, fmt.Errorf("%w: %d bits in one round > %d-bit budget (node %d, port %d)",
			ErrBandwidthExceeded, portBits[p], e.bandwidth, e.s.ids[v], p)
	}
	return sizeBits, nil
}

func resetPortBits(portBits []int, touched *[]int) {
	for _, p := range *touched {
		portBits[p] = 0
	}
	*touched = (*touched)[:0]
}

// senderShard expands, validates, and buckets one sender shard's outboxes.
// Payloads are copied into the shard's arena for the current round parity;
// the copies handed to receivers stay valid through the next compute phase.
func (e *engine) senderShard(si int) {
	sh := e.shards[si]
	gen := e.round & 1
	arena := sh.arena[gen][:0]
	for t := range sh.routes {
		sh.routes[t] = sh.routes[t][:0]
	}
	csr := e.s.csr
	for _, v := range sh.active {
		out := e.outs[v]
		if len(out) == 0 {
			continue
		}
		e.outs[v] = nil
		base := csr.off[v]
		deg := int(csr.off[v+1] - base)
		for _, o := range out {
			lo, hi := o.Port, o.Port+1
			if o.Port == -1 {
				lo, hi = 0, deg
			}
			for p := lo; p < hi; p++ {
				if p < 0 || p >= deg {
					if sh.err == nil {
						sh.err = fmt.Errorf("congest: node %d sent to invalid port %d", e.s.ids[v], p)
						sh.errV = int(v)
					}
					resetPortBits(sh.portBits, &sh.touched)
					sh.arena[gen] = arena
					return
				}
				if _, err := e.checkedSize(v, p, len(o.Payload), sh.portBits, &sh.touched); err != nil {
					if sh.err == nil {
						sh.err = err
						sh.errV = int(v)
					}
					resetPortBits(sh.portBits, &sh.touched)
					sh.arena[gen] = arena
					return
				}
				w := csr.nbr[base+int32(p)]
				start := len(arena)
				arena = append(arena, o.Payload...)
				payload := Message(arena[start:len(arena):len(arena)])
				sh.routes[e.shardOf(w)] = append(sh.routes[e.shardOf(w)], routed{
					from: v, to: w, port: csr.back[base+int32(p)], payload: payload,
				})
			}
		}
		resetPortBits(sh.portBits, &sh.touched)
	}
	sh.arena[gen] = arena
}

// receiverShard merges the routed messages destined for one receiver shard,
// scanning sender shards in index order — global sender-vertex order, the
// same order the serial path delivers in. The drop rule reproduces the
// serial pass exactly: a message is dropped if the receiver halted in an
// earlier round, or halts this round and precedes the sender in vertex
// order (the serial pass marks halts in that order, mid-delivery).
func (e *engine) receiverShard(ti int) {
	sh := e.shards[ti]
	gen := e.round & 1
	inboxes := e.inboxes[gen]
	for _, src := range e.shards {
		for _, m := range src.routes[ti] {
			if e.halted[m.to] || (e.dones[m.to] && m.to < m.from) {
				continue
			}
			inboxes[m.to] = append(inboxes[m.to], Incoming{Port: int(m.port), Payload: m.payload})
			sizeBits := 8 * len(m.payload)
			sh.messages++
			sh.bits += int64(sizeBits)
			if sizeBits > sh.maxMsgBits {
				sh.maxMsgBits = sizeBits
			}
		}
	}
}

// firstError returns the recorded validation error with the lowest sender
// vertex, matching what the serial pass would have hit first.
func (e *engine) firstError() error {
	var err error
	best := e.n
	for _, sh := range e.shards {
		if sh.err != nil && sh.errV < best {
			best, err = sh.errV, sh.err
		}
	}
	return err
}

// foldStats folds the receiver shards' per-round counters into Stats.
func (e *engine) foldStats() {
	for _, sh := range e.shards {
		e.stats.Messages += sh.messages
		e.stats.Bits += sh.bits
		if sh.maxMsgBits > e.stats.MaxMsgBits {
			e.stats.MaxMsgBits = sh.maxMsgBits
		}
		sh.messages, sh.bits, sh.maxMsgBits = 0, 0, 0
	}
}

// routeSerialPass is the deterministic serial route: sender-vertex order,
// with halts marked inline (so later senders observe them), trace events
// emitted in delivery order, and the fault RNG consumed in that same order.
func (e *engine) routeSerialPass() error {
	gen := e.round & 1
	for _, sh := range e.shards {
		// Reclaim this parity's arena: its payloads were consumed by the
		// compute phase one round ago.
		sh.arena[gen] = sh.arena[gen][:0]
	}
	if e.inj != nil {
		e.flushDelayed()
	}
	for _, sh := range e.shards {
		for _, v := range sh.active {
			out := e.outs[v]
			e.outs[v] = nil
			if err := e.deliverSerial(v, out); err != nil {
				return err
			}
			if e.dones[v] {
				e.halted[v] = true
				sh.haltedNow++
				e.trace.nodeHalted(e.round, e.s.ids[v])
			}
		}
	}
	return nil
}

// deliverSerial validates and delivers one sender's outbox in order. Shared
// by the Init phase and the serial route.
func (e *engine) deliverSerial(v int32, out []Outgoing) error {
	if len(out) == 0 {
		return nil
	}
	sh := e.shards[e.shardOf(v)]
	gen := e.round & 1
	arena := sh.arena[gen]
	inboxes := e.inboxes[gen]
	defer resetPortBits(sh.portBits, &sh.touched)
	csr := e.s.csr
	base := csr.off[v]
	deg := int(csr.off[v+1] - base)
	for _, o := range out {
		lo, hi := o.Port, o.Port+1
		if o.Port == -1 {
			lo, hi = 0, deg
		}
		for p := lo; p < hi; p++ {
			if p < 0 || p >= deg {
				sh.arena[gen] = arena
				return fmt.Errorf("congest: node %d sent to invalid port %d", e.s.ids[v], p)
			}
			sizeBits, err := e.checkedSize(v, p, len(o.Payload), sh.portBits, &sh.touched)
			if err != nil {
				sh.arena[gen] = arena
				return err
			}
			w := int(csr.nbr[base+int32(p)])
			if e.halted[w] {
				continue
			}
			if e.down != nil && e.down[w] {
				// The receiver is crashed while the message is in transit.
				e.stats.Faults.Lost++
				e.trace.fault(FaultEvent{Round: e.round, Kind: "lost", FromID: e.s.ids[v], ToID: e.s.ids[w]})
				continue
			}
			var plan FaultPlan
			if e.inj != nil {
				plan = e.inj.OnSend(e.round, int(v), w)
			}
			recvPort := int(csr.back[base+int32(p)])
			switch {
			case plan.Drop:
				e.stats.Faults.Dropped++
				e.trace.fault(FaultEvent{Round: e.round, Kind: "drop", FromID: e.s.ids[v], ToID: e.s.ids[w]})
			case plan.Delay > 0:
				e.stats.Faults.Delayed++
				e.trace.fault(FaultEvent{Round: e.round, Kind: "delay", FromID: e.s.ids[v], ToID: e.s.ids[w], Detail: plan.Delay})
				e.delayed = append(e.delayed, delayedMsg{
					due: e.round + plan.Delay, from: v, to: int32(w), port: int32(recvPort),
					payload: append([]byte(nil), o.Payload...),
				})
			default:
				start := len(arena)
				arena = append(arena, o.Payload...)
				payload := Message(arena[start:len(arena):len(arena)])
				if e.faults != nil && len(payload) > 0 && e.faults.Float64() < e.s.opts.CorruptProb {
					i := e.faults.Intn(len(payload))
					payload[i] ^= 1 << uint(e.faults.Intn(8))
				}
				inboxes[w] = append(inboxes[w], Incoming{Port: recvPort, Payload: payload})
				e.stats.Messages++
				e.stats.Bits += int64(sizeBits)
				if sizeBits > e.stats.MaxMsgBits {
					e.stats.MaxMsgBits = sizeBits
				}
				if e.trace.enabled() {
					e.trace.send(SendEvent{
						Round: e.round, FromID: e.s.ids[v], ToID: e.s.ids[w],
						Port: recvPort, SizeBits: sizeBits, Kind: e.envs[v].kind,
					})
				}
			}
			for c := 0; c < plan.Dup; c++ {
				e.stats.Faults.Duplicated++
				e.trace.fault(FaultEvent{Round: e.round, Kind: "dup", FromID: e.s.ids[v], ToID: e.s.ids[w], Detail: plan.DupDelay})
				if plan.DupDelay > 0 {
					e.stats.Faults.Delayed++
					e.delayed = append(e.delayed, delayedMsg{
						due: e.round + plan.DupDelay, from: v, to: int32(w), port: int32(recvPort),
						payload: append([]byte(nil), o.Payload...),
					})
					continue
				}
				start := len(arena)
				arena = append(arena, o.Payload...)
				payload := Message(arena[start:len(arena):len(arena)])
				inboxes[w] = append(inboxes[w], Incoming{Port: recvPort, Payload: payload})
				e.stats.Messages++
				e.stats.Bits += int64(sizeBits)
				if e.trace.enabled() {
					e.trace.send(SendEvent{
						Round: e.round, FromID: e.s.ids[v], ToID: e.s.ids[w],
						Port: recvPort, SizeBits: sizeBits, Kind: e.envs[v].kind,
					})
				}
			}
		}
	}
	sh.arena[gen] = arena
	return nil
}

// flushDelayed delivers the injector-deferred messages whose due round has
// arrived, in the order they were deferred (which is deterministic: the
// serial route queues them in sender-vertex order). A copy whose receiver
// halted or crashed in the meantime is lost. Delivery targets the current
// parity's inboxes — the generation node programs read next round, exactly
// when an on-time message sent this round would arrive.
func (e *engine) flushDelayed() {
	if len(e.delayed) == 0 {
		return
	}
	inboxes := e.inboxes[e.round&1]
	k := 0
	for _, m := range e.delayed {
		if m.due > e.round {
			e.delayed[k] = m
			k++
			continue
		}
		if e.halted[m.to] || e.down[m.to] {
			e.stats.Faults.Lost++
			e.trace.fault(FaultEvent{Round: e.round, Kind: "lost", FromID: e.s.ids[m.from], ToID: e.s.ids[m.to]})
			continue
		}
		inboxes[m.to] = append(inboxes[m.to], Incoming{Port: int(m.port), Payload: Message(m.payload)})
		sizeBits := 8 * len(m.payload)
		e.stats.Messages++
		e.stats.Bits += int64(sizeBits)
		if sizeBits > e.stats.MaxMsgBits {
			e.stats.MaxMsgBits = sizeBits
		}
		if e.trace.enabled() {
			e.trace.send(SendEvent{
				Round: e.round, FromID: e.s.ids[m.from], ToID: e.s.ids[m.to],
				Port: int(m.port), SizeBits: sizeBits, Kind: "delayed",
			})
		}
	}
	e.delayed = e.delayed[:k]
}

// compactShard marks this shard's newly halted vertices and removes them
// from the active list (the serial route has already marked and counted its
// halts; re-marking is guarded by the halted flag).
func (e *engine) compactShard(si int) {
	sh := e.shards[si]
	changed := false
	for _, v := range sh.active {
		if e.halted[v] {
			changed = true // marked by the serial route
		} else if e.dones[v] {
			e.halted[v] = true
			sh.haltedNow++
			changed = true
		}
	}
	if !changed {
		return
	}
	k := 0
	for _, v := range sh.active {
		if !e.halted[v] {
			sh.active[k] = v
			k++
		}
	}
	sh.active = sh.active[:k]
}
