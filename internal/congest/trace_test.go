package congest

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/graph"
)

// traceTestNode is a tiny deterministic protocol used to pin the trace
// format: every node broadcasts one byte in Init (kind "ping") and in
// rounds 1-2 (retagged "pong" in round 2), then halts in round 3.
type traceTestNode struct{}

func (traceTestNode) Init(env *Env) []Outgoing {
	env.Tag("ping")
	return []Outgoing{Broadcast(Message{0x01})}
}

func (traceTestNode) Round(env *Env, inbox []Incoming) ([]Outgoing, bool) {
	if env.Round == 2 {
		env.Tag("pong")
	}
	if env.Round >= 3 {
		return nil, true
	}
	return []Outgoing{Broadcast(Message{byte(env.Round)})}, false
}

func tracePath4(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New(4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 3)
	return g
}

func runTraceProtocol(t *testing.T, tracer Tracer) Stats {
	t.Helper()
	sim, err := NewSimulator(tracePath4(t), Options{Tracer: tracer})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := sim.Run(func(int) Node { return traceTestNode{} })
	if err != nil {
		t.Fatal(err)
	}
	return stats
}

// TestGoldenTrace locks the NDJSON event stream of a fixed protocol on a
// fixed graph against a committed golden file. Regenerate intentionally
// with: UPDATE_GOLDEN=1 go test ./internal/congest -run TestGoldenTrace
func TestGoldenTrace(t *testing.T) {
	var buf bytes.Buffer
	tracer := NewNDJSONTracer(&buf)
	runTraceProtocol(t, tracer)
	if err := tracer.Err(); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "golden_trace.ndjson")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("trace diverged from golden file %s\n--- got ---\n%s\n--- want ---\n%s",
			golden, buf.Bytes(), want)
	}
}

// TestTraceReadBackAgreesWithLive replays the NDJSON stream into a
// MetricsTracer and checks it reconstructs exactly what a live
// MetricsTracer observed — a differential test of the trace codec itself.
func TestTraceReadBackAgreesWithLive(t *testing.T) {
	var live MetricsTracer
	var buf bytes.Buffer
	nd := NewNDJSONTracer(&buf)
	stats := runTraceProtocol(t, MultiTracer{&live, nd})
	if err := nd.Err(); err != nil {
		t.Fatal(err)
	}

	var replayed MetricsTracer
	events, err := ReadTrace(&buf, &replayed)
	if err != nil {
		t.Fatal(err)
	}
	if events == 0 {
		t.Fatal("no events replayed")
	}
	if replayed.Stats() != stats {
		t.Fatalf("replayed stats %+v != live stats %+v", replayed.Stats(), stats)
	}
	if replayed.Info() != live.Info() {
		t.Fatalf("replayed info %+v != live info %+v", replayed.Info(), live.Info())
	}
	liveKinds, replayKinds := live.PerKind(), replayed.PerKind()
	if len(liveKinds) != len(replayKinds) {
		t.Fatalf("kind count %d != %d", len(replayKinds), len(liveKinds))
	}
	for i := range liveKinds {
		if liveKinds[i] != replayKinds[i] {
			t.Fatalf("kind %d: %+v != %+v", i, replayKinds[i], liveKinds[i])
		}
	}
	if len(live.PerRound()) != len(replayed.PerRound()) {
		t.Fatalf("round count %d != %d", len(replayed.PerRound()), len(live.PerRound()))
	}
	for i, rm := range live.PerRound() {
		if replayed.PerRound()[i] != rm {
			t.Fatalf("round %d: %+v != %+v", i, replayed.PerRound()[i], rm)
		}
	}
}

func TestMetricsTracerBreakdown(t *testing.T) {
	var m MetricsTracer
	stats := runTraceProtocol(t, &m)
	kinds := m.PerKind()
	if len(kinds) != 2 {
		t.Fatalf("expected kinds [ping pong], got %+v", kinds)
	}
	// Path on 4 vertices: broadcasts cost 2*m = 6 messages per full round.
	ping, pong := kinds[0], kinds[1]
	if ping.Kind != "ping" || pong.Kind != "pong" {
		t.Fatalf("kind order wrong: %+v", kinds)
	}
	if ping.FirstRound != 0 || ping.LastRound != 1 || ping.Messages != 12 {
		t.Fatalf("ping metrics wrong: %+v", ping)
	}
	if pong.FirstRound != 2 || pong.LastRound != 2 || pong.Messages != 6 {
		t.Fatalf("pong metrics wrong: %+v", pong)
	}
	if total := ping.Messages + pong.Messages; total != stats.Messages {
		t.Fatalf("kind totals %d != stats %d", total, stats.Messages)
	}
	if m.Utilization() <= 0 || m.Utilization() > 1 {
		t.Fatalf("utilization out of range: %v", m.Utilization())
	}
	rounds := m.PerRound()
	if len(rounds) != stats.Rounds+1 { // +1 for the Init round 0
		t.Fatalf("%d round records for %d rounds", len(rounds), stats.Rounds)
	}
	last := rounds[len(rounds)-1]
	if last.Halted != 4 || last.Active != 0 {
		t.Fatalf("final round counts wrong: %+v", last)
	}
}

// TestNilTracerHooksAllocateNothing pins the disabled-tracing fast path:
// every per-round hook dispatch must be a pointer comparison, not an
// allocation, so benchmark numbers with tracing off stay comparable.
func TestNilTracerHooksAllocateNothing(t *testing.T) {
	ts := traceSink{}
	allocs := testing.AllocsPerRun(200, func() {
		ts.runStart(RunInfo{N: 8, Edges: 7, Bandwidth: 16})
		ts.roundStart(1)
		ts.send(SendEvent{Round: 1, FromID: 1, ToID: 2, Port: 0, SizeBits: 16, Kind: "elim"})
		ts.nodeHalted(1, 1)
		ts.roundEnd(1, 7, 1)
		ts.runEnd(Stats{})
	})
	if allocs != 0 {
		t.Fatalf("nil-tracer hooks allocated %v times per round", allocs)
	}
}

func TestVertexOfIDPermuted(t *testing.T) {
	g := tracePath4(t)
	for _, seed := range []int64{0, 7, 424242} {
		sim, err := NewSimulator(g, Options{IDSeed: seed})
		if err != nil {
			t.Fatal(err)
		}
		ids := sim.IDs()
		seen := map[int]bool{}
		for v, id := range ids {
			if got := sim.VertexOfID(id); got != v {
				t.Fatalf("seed %d: VertexOfID(%d) = %d, want %d", seed, id, got, v)
			}
			if seen[id] {
				t.Fatalf("seed %d: duplicate ID %d", seed, id)
			}
			seen[id] = true
		}
		for _, bogus := range []int{0, -1, len(ids) + 1, 1 << 30} {
			if seen[bogus] {
				continue
			}
			if got := sim.VertexOfID(bogus); got != -1 {
				t.Fatalf("seed %d: VertexOfID(%d) = %d, want -1", seed, bogus, got)
			}
		}
	}
}

func benchTraceGraph() *graph.Graph {
	g := graph.New(32)
	for v := 1; v < 32; v++ {
		g.MustAddEdge(v, (v-1)/2) // complete binary tree
	}
	return g
}

func benchRun(b *testing.B, tracer Tracer) {
	b.Helper()
	g := benchTraceGraph()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim, err := NewSimulator(g, Options{Tracer: tracer})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Run(func(int) Node { return traceTestNode{} }); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunTracerNil is the baseline the other two compare against; its
// allocation count must match the pre-tracing simulator exactly.
func BenchmarkRunTracerNil(b *testing.B)     { benchRun(b, nil) }
func BenchmarkRunTracerMetrics(b *testing.B) { benchRun(b, &MetricsTracer{}) }
func BenchmarkRunTracerNDJSON(b *testing.B) {
	benchRun(b, NewNDJSONTracer(discardWriter{}))
}

type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }
