package transport_test

import (
	"bufio"
	"bytes"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/congest/transport"
	"repro/internal/graph"
	"repro/internal/shard"
)

// TestGoldenWireFrames pins the exact bytes of a handshake and a round
// exchange for a small fixed graph: magic, version, header layout, field
// order, length prefixes, digest framing — the whole wire contract. Any
// codec change that moves a single byte breaks this test, which is the
// point: the frame grammar is a compatibility surface between separately
// started processes. Regenerate intentionally with:
// UPDATE_GOLDEN=1 go test ./internal/congest/transport -run TestGoldenWireFrames
func TestGoldenWireFrames(t *testing.T) {
	g := graph.New(4)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {0, 3}} {
		if _, err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	g.SetVertexWeight(2, 5)
	spec := shard.Spec{Problem: "connected", D: 2, IDSeed: 7}
	specBytes, err := shard.EncodeSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	graphBytes, err := shard.EncodeGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	digest := shard.Digest(specBytes, graphBytes)

	frames := []struct {
		name string
		f    transport.Frame
	}{
		{"hello", transport.Frame{Type: transport.TypeHello,
			Payload: transport.Hello{Proto: transport.Version, Shard: 1}.Encode()}},
		{"config", transport.Frame{Type: transport.TypeConfig,
			Payload: transport.Config{Shards: 2, ShardSize: 2, Digest: digest, Spec: specBytes, Graph: graphBytes}.Encode()}},
		{"ready", transport.Frame{Type: transport.TypeReady,
			Payload: transport.Ready{Digest: digest}.Encode()}},
		{"step", transport.Frame{Type: transport.TypeStep, Round: 1}},
		{"batch", transport.Frame{Type: transport.TypeBatch, Round: 1,
			Payload: transport.Batch{ErrVertex: -1, Sub: [][]transport.Msg{
				{{From: 0, To: 2, Port: 0, Seq: 0, Payload: []byte{0x0A, 0x0B}}},
				{{From: 1, To: 3, Port: 1, Seq: 0, Kind: "dp", Payload: []byte{0x0C}}},
			}}.Encode()}},
		{"deliver", transport.Frame{Type: transport.TypeDeliver, Round: 1,
			Payload: transport.Deliver{Msgs: []transport.Msg{
				{From: 0, To: 2, Port: 0, Seq: 0, Payload: []byte{0x0A, 0x0B}},
			}}.Encode()}},
		{"report", transport.Frame{Type: transport.TypeReport, Round: 1,
			Payload: transport.Report{Messages: 2, Bits: 24, MaxMsgBits: 16,
				Halted: []int32{3}, Events: []transport.Event{{From: 0, Seq: 0, To: 2, Bits: 16}}}.Encode()}},
		{"finish", transport.Frame{Type: transport.TypeFinish}},
		{"outputs", transport.Frame{Type: transport.TypeOutputs,
			Payload: transport.Outputs{Data: []byte(`{"rel":{}}`)}.Encode()}},
		{"abort", transport.Frame{Type: transport.TypeAbort,
			Payload: transport.Abort{Text: "round limit"}.Encode()}},
	}

	var buf bytes.Buffer
	for _, fr := range frames {
		enc := transport.EncodeFrame(fr.f)
		fmt.Fprintf(&buf, "%s %s\n", fr.name, hex.EncodeToString(enc))
		// The golden bytes must decode back to the same frame.
		dec, err := transport.DecodeFrame(enc)
		if err != nil {
			t.Fatalf("%s: decode: %v", fr.name, err)
		}
		if _, err := transport.DecodePayload(dec); err != nil {
			t.Fatalf("%s: decode payload: %v", fr.name, err)
		}
	}

	golden := filepath.Join("testdata", "golden_wire.txt")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if bytes.Equal(buf.Bytes(), want) {
		return
	}
	// Report the first divergent frame by name rather than a byte offset.
	gotLines := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	wantLines := bufio.NewScanner(bytes.NewReader(want))
	for gotLines.Scan() && wantLines.Scan() {
		if gotLines.Text() != wantLines.Text() {
			name := strings.SplitN(wantLines.Text(), " ", 2)[0]
			t.Fatalf("wire bytes diverged at frame %q:\n got  %s\n want %s", name, gotLines.Text(), wantLines.Text())
		}
	}
	t.Fatalf("wire dump length diverged: got %d bytes, want %d", buf.Len(), len(want))
}

// TestGoldenWireHeaderLayout pins the header byte-by-byte: magic 'D','F',
// version, type, then round and length as little-endian u32.
func TestGoldenWireHeaderLayout(t *testing.T) {
	enc := transport.EncodeFrame(transport.Frame{Type: transport.TypeStep, Round: 0x01020304})
	want := []byte{'D', 'F', transport.Version, transport.TypeStep, 0x04, 0x03, 0x02, 0x01, 0, 0, 0, 0}
	if !bytes.Equal(enc, want) {
		t.Fatalf("header layout:\n got  %x\n want %x", enc, want)
	}
}
