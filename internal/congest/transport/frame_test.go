package transport

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"
)

// samplePayloads returns one representative value per payload type, with
// every field exercised (nonzero integers, non-ASCII strings, empty and
// non-empty lists).
func sampleHello() Hello { return Hello{Proto: Version, Shard: 3} }

func sampleConfig() Config {
	c := Config{Shards: 4, ShardSize: 7, Spec: []byte(`{"problem":"connected"}`), Graph: []byte("n 3\ne 0 1\n")}
	for i := range c.Digest {
		c.Digest[i] = byte(i)
	}
	return c
}

func sampleReady() Ready {
	var r Ready
	for i := range r.Digest {
		r.Digest[i] = byte(0xFF - i)
	}
	return r
}

func sampleMsgs() []Msg {
	return []Msg{
		{From: 0, To: 5, Port: 1, Seq: 0, Kind: "dp", Payload: []byte{1, 2, 3}},
		{From: 2, To: 3, Port: 0, Seq: 7, Kind: "", Payload: nil},
	}
}

func sampleBatch() Batch {
	return Batch{ErrVertex: -1, Sub: [][]Msg{sampleMsgs(), nil, {{From: 9, To: 1, Port: 2, Seq: 1, Payload: []byte("x")}}}}
}

func sampleErrBatch() Batch {
	return Batch{ErrKind: BatchErrBandwidth, ErrVertex: 12, ErrText: "congest: bandwidth exceeded: 99 bits"}
}

func sampleDeliver() Deliver {
	return Deliver{Delayed: sampleMsgs()[:1], Msgs: sampleMsgs()}
}

func sampleReport() Report {
	return Report{
		Messages: 41, Bits: 512, MaxMsgBits: 16, Lost: 2,
		Halted: []int32{3, 8},
		Events: []Event{{From: 1, Seq: 0, To: 2, Port: 1, Bits: 16, Kind: "dp"}},
	}
}

func sampleOutputs() Outputs { return Outputs{Data: []byte(`{"outputs":[]}`)} }

func sampleAbort() Abort { return Abort{Text: "round limit"} }

func TestPayloadRoundTrips(t *testing.T) {
	cases := []struct {
		name   string
		typ    uint8
		encode func() []byte
		want   interface{}
	}{
		{"hello", TypeHello, func() []byte { return sampleHello().Encode() }, sampleHello()},
		{"config", TypeConfig, func() []byte { return sampleConfig().Encode() }, sampleConfig()},
		{"ready", TypeReady, func() []byte { return sampleReady().Encode() }, sampleReady()},
		{"batch", TypeBatch, func() []byte { return sampleBatch().Encode() }, sampleBatch()},
		{"err_batch", TypeBatch, func() []byte { return sampleErrBatch().Encode() }, sampleErrBatch()},
		{"deliver", TypeDeliver, func() []byte { return sampleDeliver().Encode() }, sampleDeliver()},
		{"report", TypeReport, func() []byte { return sampleReport().Encode() }, sampleReport()},
		{"outputs", TypeOutputs, func() []byte { return sampleOutputs().Encode() }, sampleOutputs()},
		{"abort", TypeAbort, func() []byte { return sampleAbort().Encode() }, sampleAbort()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			payload := tc.encode()
			got, err := DecodePayload(Frame{Type: tc.typ, Payload: payload})
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("round trip:\n got  %+v\n want %+v", got, tc.want)
			}
			// Every truncation of a valid payload must fail with a typed
			// error, never panic or succeed.
			for cut := 0; cut < len(payload); cut++ {
				if _, err := DecodePayload(Frame{Type: tc.typ, Payload: payload[:cut]}); err == nil {
					t.Fatalf("truncation to %d bytes decoded successfully", cut)
				} else if !errors.Is(err, ErrFrame) {
					t.Fatalf("truncation to %d bytes: untyped error %v", cut, err)
				}
			}
			// Appending a byte must trip the trailing-bytes check.
			if _, err := DecodePayload(Frame{Type: tc.typ, Payload: append(append([]byte(nil), payload...), 0)}); !errors.Is(err, ErrTrailing) && !errors.Is(err, ErrFrame) {
				t.Fatalf("trailing byte: got %v", err)
			}
		})
	}
}

func TestFrameHeaderErrors(t *testing.T) {
	valid := EncodeFrame(Frame{Type: TypeStep, Round: 9})
	cases := []struct {
		name string
		mut  func([]byte) []byte
		want error
	}{
		{"bad_magic", func(b []byte) []byte { b[0] = 'X'; return b }, ErrBadMagic},
		{"bad_version", func(b []byte) []byte { b[2] = 99; return b }, ErrBadVersion},
		{"bad_type_zero", func(b []byte) []byte { b[3] = 0; return b }, ErrBadType},
		{"bad_type_high", func(b []byte) []byte { b[3] = maxType + 1; return b }, ErrBadType},
		{"short_header", func(b []byte) []byte { return b[:HeaderSize-1] }, ErrTruncated},
		{"oversized_len", func(b []byte) []byte { b[8] = 200; return b }, ErrOversize},
		{"trailing", func(b []byte) []byte { return append(b, 0xAB) }, ErrTrailing},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.mut(append([]byte(nil), valid...))
			if _, err := DecodeFrame(b); !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
		})
	}
	got, err := DecodeFrame(valid)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != TypeStep || got.Round != 9 || len(got.Payload) != 0 {
		t.Fatalf("bad decode of valid frame: %+v", got)
	}
}

// TestAllocationBombGuards: count fields claiming more elements than bytes
// present must fail before allocating.
func TestAllocationBombGuards(t *testing.T) {
	// A Batch claiming 2^32-1 sub-batches in a tiny payload.
	var e enc
	e.u8(BatchOK)
	e.u32(0)
	e.str("")
	e.u32(0xFFFFFFFF)
	if _, err := DecodeBatch(e.b); !errors.Is(err, ErrOversize) {
		t.Fatalf("batch bomb: got %v", err)
	}
	// A Report claiming 2^31 events.
	r := sampleReport()
	r.Halted = nil
	r.Events = nil
	body := r.Encode()
	var e2 enc
	e2.b = body[:len(body)-4] // strip the zero events count
	e2.u32(1 << 31)
	if _, err := DecodeReport(e2.b); !errors.Is(err, ErrOversize) {
		t.Fatalf("report bomb: got %v", err)
	}
}

func TestConfigDigestSizeEnforced(t *testing.T) {
	var e enc
	e.u32(1)
	e.u32(1)
	e.bytes(make([]byte, DigestSize-1)) // one byte short
	e.bytes(nil)
	e.bytes(nil)
	if _, err := DecodeConfig(e.b); !errors.Is(err, ErrBadDigest) {
		t.Fatalf("short digest: got %v", err)
	}
}

func TestStepFinishRejectPayload(t *testing.T) {
	for _, typ := range []uint8{TypeStep, TypeFinish} {
		if _, err := DecodePayload(Frame{Type: typ, Payload: []byte{1}}); !errors.Is(err, ErrTrailing) {
			t.Fatalf("type %d with payload: got %v", typ, err)
		}
		if v, err := DecodePayload(Frame{Type: typ}); err != nil || v != nil {
			t.Fatalf("bare type %d: %v %v", typ, v, err)
		}
	}
}

// TestStreamRoundTrip drives Writer/Reader over a loopback pair and checks
// the wire counters account headers and payloads exactly.
func TestStreamRoundTrip(t *testing.T) {
	a, b := Loopback()
	defer a.Close()
	defer b.Close()
	var ws, rs WireStats
	w := NewWriter(a, &ws)
	r := NewReader(b, 0, &rs)

	frames := []Frame{
		{Type: TypeHello, Payload: sampleHello().Encode()},
		{Type: TypeStep, Round: 4},
		{Type: TypeBatch, Round: 4, Payload: sampleBatch().Encode()},
	}
	done := make(chan error, 1)
	go func() {
		for _, f := range frames {
			if err := w.WriteFrame(f); err != nil {
				done <- err
				return
			}
		}
		done <- a.Close()
	}()
	var total int64
	for i := 0; ; i++ {
		f, err := r.ReadFrame()
		if err == io.EOF {
			if i != len(frames) {
				t.Fatalf("EOF after %d frames, want %d", i, len(frames))
			}
			break
		}
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		want := frames[i]
		if f.Type != want.Type || f.Round != want.Round || !bytes.Equal(f.Payload, want.Payload) {
			t.Fatalf("frame %d mismatch", i)
		}
		total += int64(HeaderSize + len(f.Payload))
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if rs.FramesRecv != int64(len(frames)) || rs.BytesRecv != total {
		t.Errorf("reader stats %+v, want %d frames / %d bytes", rs, len(frames), total)
	}
	if ws.FramesSent != int64(len(frames)) || ws.BytesSent != total {
		t.Errorf("writer stats %+v, want %d frames / %d bytes", ws, len(frames), total)
	}
}

// TestStreamMaxPayload: a length field above the reader's budget fails
// before any allocation of that size.
func TestStreamMaxPayload(t *testing.T) {
	hdr := EncodeFrame(Frame{Type: TypeAbort, Payload: make([]byte, 64)})
	r := NewReader(bytes.NewReader(hdr), 16, nil)
	if _, err := r.ReadFrame(); !errors.Is(err, ErrOversize) {
		t.Fatalf("got %v, want ErrOversize", err)
	}
}

// TestStreamTruncatedMidFrame: a stream ending inside a frame is
// ErrTruncated, not a clean EOF.
func TestStreamTruncatedMidFrame(t *testing.T) {
	full := EncodeFrame(Frame{Type: TypeAbort, Payload: sampleAbort().Encode()})
	for _, cut := range []int{1, HeaderSize - 1, HeaderSize, len(full) - 1} {
		r := NewReader(bytes.NewReader(full[:cut]), 0, nil)
		_, err := r.ReadFrame()
		if cut == 0 {
			continue
		}
		if !errors.Is(err, ErrTruncated) {
			t.Errorf("cut at %d: got %v, want ErrTruncated", cut, err)
		}
	}
	// Zero bytes is the clean between-frames EOF.
	r := NewReader(bytes.NewReader(nil), 0, nil)
	if _, err := r.ReadFrame(); err != io.EOF {
		t.Errorf("empty stream: got %v, want io.EOF", err)
	}
}
