package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
)

// DefaultMaxPayload bounds a single frame's payload on a stream reader. The
// handshake Config frame carries the whole graph in edge-list text, so the
// ceiling is generous; sessions that know their graphs are small may lower
// it.
const DefaultMaxPayload = 1 << 30

// WireStats counts what actually crossed the transport, as opposed to the
// logical congest.Stats the engine accounts per message. Bytes include the
// 12-byte frame headers, so BytesSent/BytesRecv minus the logical payload
// is the protocol's framing overhead. The fault counters record what the
// frame-level injector did. Not safe for concurrent use: a session's
// readers and writers must share one goroutine (the coordinator's round
// loop and each worker's loop both do).
type WireStats struct {
	FramesSent int64
	FramesRecv int64
	BytesSent  int64
	BytesRecv  int64
	// Frame-fault counters (coordinator side; zero on clean transports).
	FramesDropped int64
	FramesDup     int64
	FramesDelayed int64
	MsgsDropped   int64
	MsgsDup       int64
	MsgsDelayed   int64
}

// Add folds another WireStats into this one (summing all counters).
func (w WireStats) Add(o WireStats) WireStats {
	w.FramesSent += o.FramesSent
	w.FramesRecv += o.FramesRecv
	w.BytesSent += o.BytesSent
	w.BytesRecv += o.BytesRecv
	w.FramesDropped += o.FramesDropped
	w.FramesDup += o.FramesDup
	w.FramesDelayed += o.FramesDelayed
	w.MsgsDropped += o.MsgsDropped
	w.MsgsDup += o.MsgsDup
	w.MsgsDelayed += o.MsgsDelayed
	return w
}

// Writer frames and writes messages to a byte stream. Each WriteFrame
// flushes, so the peer — which is always blocked reading at a barrier —
// observes complete frames without a flush protocol.
type Writer struct {
	w     *bufio.Writer
	stats *WireStats
	buf   []byte
}

// NewWriter wraps w. stats may be nil.
func NewWriter(w io.Writer, stats *WireStats) *Writer {
	return &Writer{w: bufio.NewWriter(w), stats: stats}
}

// WriteFrame encodes and flushes one frame.
func (w *Writer) WriteFrame(f Frame) error {
	w.buf = AppendFrame(w.buf[:0], f)
	if _, err := w.w.Write(w.buf); err != nil {
		return err
	}
	if err := w.w.Flush(); err != nil {
		return err
	}
	if w.stats != nil {
		w.stats.FramesSent++
		w.stats.BytesSent += int64(len(w.buf))
	}
	return nil
}

// Reader reads length-prefixed frames from a byte stream, enforcing a
// maximum payload size so a corrupt or hostile length field cannot drive an
// unbounded allocation.
type Reader struct {
	r          *bufio.Reader
	maxPayload int
	stats      *WireStats
	buf        []byte
}

// NewReader wraps r. maxPayload <= 0 means DefaultMaxPayload; stats may be
// nil.
func NewReader(r io.Reader, maxPayload int, stats *WireStats) *Reader {
	if maxPayload <= 0 {
		maxPayload = DefaultMaxPayload
	}
	return &Reader{r: bufio.NewReader(r), maxPayload: maxPayload, stats: stats}
}

// ReadFrame reads exactly one frame. The returned payload is owned by the
// Reader and valid until the next ReadFrame call. io.EOF is returned
// unwrapped when the stream ends cleanly between frames.
func (r *Reader) ReadFrame() (Frame, error) {
	var hdr [HeaderSize]byte
	if _, err := io.ReadFull(r.r, hdr[:1]); err != nil {
		return Frame{}, err // clean EOF between frames stays io.EOF
	}
	if _, err := io.ReadFull(r.r, hdr[1:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, fmt.Errorf("%w: header: %v", ErrTruncated, err)
	}
	if hdr[0] != magic[0] || hdr[1] != magic[1] {
		return Frame{}, ErrBadMagic
	}
	if hdr[2] != Version {
		return Frame{}, fmt.Errorf("%w: got %d, want %d", ErrBadVersion, hdr[2], Version)
	}
	t := hdr[3]
	if t < TypeHello || t > maxType {
		return Frame{}, fmt.Errorf("%w: %d", ErrBadType, t)
	}
	round := binary.LittleEndian.Uint32(hdr[4:8])
	plen := binary.LittleEndian.Uint32(hdr[8:12])
	if int64(plen) > int64(r.maxPayload) {
		return Frame{}, fmt.Errorf("%w: payload %d > limit %d", ErrOversize, plen, r.maxPayload)
	}
	if cap(r.buf) < int(plen) {
		r.buf = make([]byte, plen)
	}
	r.buf = r.buf[:plen]
	if _, err := io.ReadFull(r.r, r.buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, fmt.Errorf("%w: payload: %v", ErrTruncated, err)
	}
	if r.stats != nil {
		r.stats.FramesRecv++
		r.stats.BytesRecv += int64(HeaderSize) + int64(plen)
	}
	return Frame{Type: t, Round: round, Payload: r.buf}, nil
}

// Loopback returns a synchronously connected in-memory transport pair: what
// one side writes the other reads, with no buffering beyond the framing
// layer's. It is the in-process stand-in for a socket, used by the
// differential battery to run the full multi-process protocol (frames,
// digests, merges) without OS processes.
func Loopback() (coordinator, worker io.ReadWriteCloser) {
	return net.Pipe()
}
