package transport

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

// FuzzFrameDecode feeds arbitrary bytes through the full decode path —
// frame header, typed payload — and enforces the codec's safety contract:
// no panic, no over-read, every failure a typed error wrapping ErrFrame,
// and every successful decode canonical (re-encoding reproduces the input
// bytes exactly and decodes to an equal value).
func FuzzFrameDecode(f *testing.F) {
	// One valid frame per type.
	f.Add(EncodeFrame(Frame{Type: TypeHello, Payload: sampleHello().Encode()}))
	f.Add(EncodeFrame(Frame{Type: TypeConfig, Payload: sampleConfig().Encode()}))
	f.Add(EncodeFrame(Frame{Type: TypeReady, Payload: sampleReady().Encode()}))
	f.Add(EncodeFrame(Frame{Type: TypeStep, Round: 3}))
	f.Add(EncodeFrame(Frame{Type: TypeBatch, Round: 3, Payload: sampleBatch().Encode()}))
	f.Add(EncodeFrame(Frame{Type: TypeBatch, Round: 3, Payload: sampleErrBatch().Encode()}))
	f.Add(EncodeFrame(Frame{Type: TypeDeliver, Round: 3, Payload: sampleDeliver().Encode()}))
	f.Add(EncodeFrame(Frame{Type: TypeReport, Round: 3, Payload: sampleReport().Encode()}))
	f.Add(EncodeFrame(Frame{Type: TypeFinish}))
	f.Add(EncodeFrame(Frame{Type: TypeOutputs, Payload: sampleOutputs().Encode()}))
	f.Add(EncodeFrame(Frame{Type: TypeAbort, Payload: sampleAbort().Encode()}))

	// Hostile shapes: truncations, oversized length fields, corrupt headers,
	// wrong digest sizes, duplicate headers / concatenated frames.
	valid := EncodeFrame(Frame{Type: TypeBatch, Round: 1, Payload: sampleBatch().Encode()})
	f.Add(valid[:HeaderSize-2])
	f.Add(valid[:HeaderSize+3])
	over := append([]byte(nil), valid...)
	over[8], over[9], over[10], over[11] = 0xFF, 0xFF, 0xFF, 0x7F
	f.Add(over)
	badMagic := append([]byte(nil), valid...)
	badMagic[0] = 'X'
	f.Add(badMagic)
	badVer := append([]byte(nil), valid...)
	badVer[2] = 7
	f.Add(badVer)
	badType := append([]byte(nil), valid...)
	badType[3] = maxType + 1
	f.Add(badType)
	shortDigest := Config{Shards: 1, ShardSize: 1}
	var e enc
	e.u32(shortDigest.Shards)
	e.u32(shortDigest.ShardSize)
	e.bytes(make([]byte, DigestSize/2))
	e.bytes(nil)
	e.bytes(nil)
	f.Add(EncodeFrame(Frame{Type: TypeConfig, Payload: e.b}))
	f.Add(append(append([]byte(nil), valid...), valid...)) // duplicate frame
	bomb := Batch{ErrVertex: -1}.Encode()
	bomb[len(bomb)-4], bomb[len(bomb)-3] = 0xFF, 0xFF // nsub count bomb
	f.Add(EncodeFrame(Frame{Type: TypeBatch, Payload: bomb}))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, b []byte) {
		fr, err := DecodeFrame(b)
		if err != nil {
			if !errors.Is(err, ErrFrame) {
				t.Fatalf("DecodeFrame: untyped error %v", err)
			}
			return
		}
		v, err := DecodePayload(fr)
		if err != nil {
			if !errors.Is(err, ErrFrame) {
				t.Fatalf("DecodePayload: untyped error %v", err)
			}
			return
		}
		// Successful decode ⇒ re-encoding is byte-identical (the grammar has
		// exactly one encoding per value) and decodes to an equal value.
		var payload []byte
		switch p := v.(type) {
		case nil: // Step / Finish
		case Hello:
			payload = p.Encode()
		case Config:
			payload = p.Encode()
		case Ready:
			payload = p.Encode()
		case Batch:
			payload = p.Encode()
		case Deliver:
			payload = p.Encode()
		case Report:
			payload = p.Encode()
		case Outputs:
			payload = p.Encode()
		case Abort:
			payload = p.Encode()
		default:
			t.Fatalf("unknown payload type %T", v)
		}
		if !bytes.Equal(payload, fr.Payload) {
			t.Fatalf("non-canonical encoding: re-encoded %d bytes differ from input %d bytes", len(payload), len(fr.Payload))
		}
		re := EncodeFrame(Frame{Type: fr.Type, Round: fr.Round, Payload: payload})
		if !bytes.Equal(re, b) {
			t.Fatalf("re-encoded frame differs from input")
		}
		fr2, err := DecodeFrame(re)
		if err != nil {
			t.Fatalf("re-decode frame: %v", err)
		}
		v2, err := DecodePayload(fr2)
		if err != nil {
			t.Fatalf("re-decode payload: %v", err)
		}
		if !reflect.DeepEqual(v, v2) {
			t.Fatalf("round trip changed value:\n first  %+v\n second %+v", v, v2)
		}
	})
}
