// Package transport is the process-boundary seam of the CONGEST engine: a
// length-prefixed binary frame protocol that carries the multi-process
// round barrier (handshake, per-round message batches, deterministic
// delivery, reports) over any byte stream — a Unix socket, a TCP
// connection, or the in-memory loopback pair used by tests.
//
// The codec is deliberately dumb: fixed 12-byte header, little-endian
// integers, length-prefixed byte strings — the same wire grammar the
// protocol layer already uses for its DP tables (protocols.wireWriter).
// Every decoder is a pure function over a byte slice with explicit bounds
// checks; hostile input yields a typed error (wrapping ErrFrame), never a
// panic, an over-read, or an unbounded allocation.
//
// Frame grammar (all integers little-endian):
//
//	frame   := magic "DF" | version u8 | type u8 | round u32 | len u32 | payload[len]
//	hello   := proto u32 | shard u32
//	config  := shards u32 | shardSize u32 | digest bytes32 | spec bytes | graph bytes
//	ready   := digest bytes32
//	step    := ε                     (round rides in the header)
//	msg     := from u32 | to u32 | port u32 | seq u32 | kind str | payload bytes
//	batch   := errKind u8 | errVertex u32 | errText str | nsub u32 | { n u32 | msg×n }×nsub
//	deliver := nd u32 | msg×nd | n u32 | msg×n
//	report  := messages i64 | bits i64 | maxMsgBits u32 | lost i64 |
//	           nhalt u32 | u32×nhalt | nev u32 | event×nev
//	event   := from u32 | seq u32 | to u32 | port u32 | bits u32 | kind str
//	outputs := data bytes
//	abort   := text str
//	finish  := ε
//	bytes   := len u32 | byte×len          str := bytes
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Version is the frame-protocol version byte. A coordinator and a worker
// must agree on it exactly; there is no negotiation.
const Version = 1

// HeaderSize is the fixed size of an encoded frame header.
const HeaderSize = 12

// DigestSize is the size of the handshake digest (SHA-256).
const DigestSize = 32

// Frame types.
const (
	TypeHello   = 1  // worker -> coordinator: protocol version + shard index
	TypeConfig  = 2  // coordinator -> worker: topology, spec, graph, digest
	TypeReady   = 3  // worker -> coordinator: digest echo
	TypeStep    = 4  // coordinator -> worker: run the round in the header
	TypeBatch   = 5  // worker -> coordinator: validated outgoing messages
	TypeDeliver = 6  // coordinator -> worker: merged incoming messages
	TypeReport  = 7  // worker -> coordinator: delivery counters, halts, events
	TypeFinish  = 8  // coordinator -> worker: all nodes halted, send outputs
	TypeOutputs = 9  // worker -> coordinator: per-vertex protocol outputs
	TypeAbort   = 10 // either direction: the session is over, with a reason
)

const maxType = TypeAbort

// Typed decode errors. Every failure wraps ErrFrame, so callers can match
// the family with errors.Is(err, ErrFrame) or the precise cause with the
// specific sentinel.
var (
	// ErrFrame is the base error of every frame/payload decode failure.
	ErrFrame = errors.New("transport: bad frame")
	// ErrBadMagic marks a header that does not start with "DF".
	ErrBadMagic = fmt.Errorf("%w: bad magic", ErrFrame)
	// ErrBadVersion marks a frame from a different protocol version.
	ErrBadVersion = fmt.Errorf("%w: version mismatch", ErrFrame)
	// ErrBadType marks an unknown frame type byte.
	ErrBadType = fmt.Errorf("%w: unknown frame type", ErrFrame)
	// ErrTruncated marks input shorter than its own length fields claim.
	ErrTruncated = fmt.Errorf("%w: truncated", ErrFrame)
	// ErrOversize marks a length field exceeding the reader's frame budget
	// (or, in pure decoding, the bytes actually present).
	ErrOversize = fmt.Errorf("%w: oversized length", ErrFrame)
	// ErrTrailing marks leftover bytes after a complete frame or payload.
	ErrTrailing = fmt.Errorf("%w: trailing bytes", ErrFrame)
	// ErrBadDigest marks a handshake digest of the wrong size.
	ErrBadDigest = fmt.Errorf("%w: digest must be %d bytes", ErrFrame, DigestSize)
)

var magic = [2]byte{'D', 'F'}

// Frame is one unit on the wire: a type, the round it belongs to (0 for
// handshake/teardown frames), and an opaque payload.
type Frame struct {
	Type    uint8
	Round   uint32
	Payload []byte
}

// AppendFrame appends the encoded frame to dst and returns the result.
func AppendFrame(dst []byte, f Frame) []byte {
	dst = append(dst, magic[0], magic[1], Version, f.Type)
	dst = binary.LittleEndian.AppendUint32(dst, f.Round)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(f.Payload)))
	return append(dst, f.Payload...)
}

// EncodeFrame encodes the frame as a fresh byte slice.
func EncodeFrame(f Frame) []byte { return AppendFrame(nil, f) }

// DecodeFrame decodes exactly one frame from b. The whole input must be
// consumed: trailing bytes are an error, so a frame boundary can never be
// silently misplaced. The returned payload aliases b.
func DecodeFrame(b []byte) (Frame, error) {
	if len(b) < HeaderSize {
		return Frame{}, fmt.Errorf("%w: %d header bytes of %d", ErrTruncated, len(b), HeaderSize)
	}
	if b[0] != magic[0] || b[1] != magic[1] {
		return Frame{}, ErrBadMagic
	}
	if b[2] != Version {
		return Frame{}, fmt.Errorf("%w: got %d, want %d", ErrBadVersion, b[2], Version)
	}
	t := b[3]
	if t < TypeHello || t > maxType {
		return Frame{}, fmt.Errorf("%w: %d", ErrBadType, t)
	}
	round := binary.LittleEndian.Uint32(b[4:8])
	plen := binary.LittleEndian.Uint32(b[8:12])
	rest := b[HeaderSize:]
	if uint64(plen) > uint64(len(rest)) {
		return Frame{}, fmt.Errorf("%w: payload length %d, %d bytes present", ErrOversize, plen, len(rest))
	}
	if int(plen) != len(rest) {
		return Frame{}, fmt.Errorf("%w: %d after payload", ErrTrailing, len(rest)-int(plen))
	}
	return Frame{Type: t, Round: round, Payload: rest[:plen:plen]}, nil
}

// dec is the bounds-checked payload cursor. Unlike DecodeFrame it never
// aliases hostile input into long-lived structures without a copy decision
// made per field.
type dec struct{ b []byte }

func (d *dec) u8() (uint8, error) {
	if len(d.b) < 1 {
		return 0, fmt.Errorf("%w: u8", ErrTruncated)
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v, nil
}

func (d *dec) u32() (uint32, error) {
	if len(d.b) < 4 {
		return 0, fmt.Errorf("%w: u32", ErrTruncated)
	}
	v := binary.LittleEndian.Uint32(d.b)
	d.b = d.b[4:]
	return v, nil
}

func (d *dec) i64() (int64, error) {
	if len(d.b) < 8 {
		return 0, fmt.Errorf("%w: i64", ErrTruncated)
	}
	v := int64(binary.LittleEndian.Uint64(d.b))
	d.b = d.b[8:]
	return v, nil
}

func (d *dec) bytes() ([]byte, error) {
	n, err := d.u32()
	if err != nil {
		return nil, err
	}
	if uint64(n) > uint64(len(d.b)) {
		return nil, fmt.Errorf("%w: %d-byte field, %d present", ErrOversize, n, len(d.b))
	}
	v := append([]byte(nil), d.b[:n]...)
	d.b = d.b[n:]
	return v, nil
}

func (d *dec) str() (string, error) {
	n, err := d.u32()
	if err != nil {
		return "", err
	}
	if uint64(n) > uint64(len(d.b)) {
		return "", fmt.Errorf("%w: %d-byte string, %d present", ErrOversize, n, len(d.b))
	}
	v := string(d.b[:n])
	d.b = d.b[n:]
	return v, nil
}

// count reads a u32 element count and rejects counts that could not possibly
// fit in the remaining bytes (each element occupies at least minSize bytes),
// so a hostile count never drives an unbounded allocation.
func (d *dec) count(minSize int) (int, error) {
	n, err := d.u32()
	if err != nil {
		return 0, err
	}
	if uint64(n)*uint64(minSize) > uint64(len(d.b)) {
		return 0, fmt.Errorf("%w: count %d × %d bytes, %d present", ErrOversize, n, minSize, len(d.b))
	}
	return int(n), nil
}

func (d *dec) done() error {
	if len(d.b) != 0 {
		return fmt.Errorf("%w: %d after payload body", ErrTrailing, len(d.b))
	}
	return nil
}

type enc struct{ b []byte }

func (e *enc) u8(v uint8)   { e.b = append(e.b, v) }
func (e *enc) u32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *enc) i64(v int64)  { e.b = binary.LittleEndian.AppendUint64(e.b, uint64(v)) }
func (e *enc) bytes(p []byte) {
	e.u32(uint32(len(p)))
	e.b = append(e.b, p...)
}
func (e *enc) str(s string) {
	e.u32(uint32(len(s)))
	e.b = append(e.b, s...)
}

// Hello is the worker's first frame: its protocol version and shard index.
type Hello struct {
	Proto uint32
	Shard uint32
}

// Encode serializes the payload.
func (h Hello) Encode() []byte {
	var e enc
	e.u32(h.Proto)
	e.u32(h.Shard)
	return e.b
}

// DecodeHello parses a TypeHello payload.
func DecodeHello(b []byte) (Hello, error) {
	d := dec{b}
	var h Hello
	var err error
	if h.Proto, err = d.u32(); err != nil {
		return h, err
	}
	if h.Shard, err = d.u32(); err != nil {
		return h, err
	}
	return h, d.done()
}

// Config is the coordinator's handshake frame: shard topology, the opaque
// run spec (JSON at the session layer), the graph serialized in edge-list
// text, and the SHA-256 digest binding spec and graph together.
type Config struct {
	Shards    uint32
	ShardSize uint32
	Digest    [DigestSize]byte
	Spec      []byte
	Graph     []byte
}

// Encode serializes the payload.
func (c Config) Encode() []byte {
	var e enc
	e.u32(c.Shards)
	e.u32(c.ShardSize)
	e.bytes(c.Digest[:])
	e.bytes(c.Spec)
	e.bytes(c.Graph)
	return e.b
}

// DecodeConfig parses a TypeConfig payload.
func DecodeConfig(b []byte) (Config, error) {
	d := dec{b}
	var c Config
	var err error
	if c.Shards, err = d.u32(); err != nil {
		return c, err
	}
	if c.ShardSize, err = d.u32(); err != nil {
		return c, err
	}
	dg, err := d.bytes()
	if err != nil {
		return c, err
	}
	if len(dg) != DigestSize {
		return c, fmt.Errorf("%w: got %d", ErrBadDigest, len(dg))
	}
	copy(c.Digest[:], dg)
	if c.Spec, err = d.bytes(); err != nil {
		return c, err
	}
	if c.Graph, err = d.bytes(); err != nil {
		return c, err
	}
	return c, d.done()
}

// Ready is the worker's digest echo closing the handshake.
type Ready struct {
	Digest [DigestSize]byte
}

// Encode serializes the payload.
func (r Ready) Encode() []byte {
	var e enc
	e.bytes(r.Digest[:])
	return e.b
}

// DecodeReady parses a TypeReady payload.
func DecodeReady(b []byte) (Ready, error) {
	d := dec{b}
	var r Ready
	dg, err := d.bytes()
	if err != nil {
		return r, err
	}
	if len(dg) != DigestSize {
		return r, fmt.Errorf("%w: got %d", ErrBadDigest, len(dg))
	}
	copy(r.Digest[:], dg)
	return r, d.done()
}

// Msg is one validated CONGEST message on the wire. From/To are vertex
// indices, Port is the receiver's port, Seq numbers the sender's emissions
// within the round (the trace merge key), and Kind is the sender's trace tag
// ("" outside traced runs).
type Msg struct {
	From, To, Port, Seq int32
	Kind                string
	Payload             []byte
}

// msgMinSize is the smallest encoding of a Msg (four u32 fields plus two
// empty length prefixes), used to bound count fields.
const msgMinSize = 4*4 + 4 + 4

func (e *enc) msg(m Msg) {
	e.u32(uint32(m.From))
	e.u32(uint32(m.To))
	e.u32(uint32(m.Port))
	e.u32(uint32(m.Seq))
	e.str(m.Kind)
	e.bytes(m.Payload)
}

func (d *dec) msg() (Msg, error) {
	var m Msg
	from, err := d.u32()
	if err != nil {
		return m, err
	}
	to, err := d.u32()
	if err != nil {
		return m, err
	}
	port, err := d.u32()
	if err != nil {
		return m, err
	}
	seq, err := d.u32()
	if err != nil {
		return m, err
	}
	m.From, m.To, m.Port, m.Seq = int32(from), int32(to), int32(port), int32(seq)
	if m.Kind, err = d.str(); err != nil {
		return m, err
	}
	if m.Payload, err = d.bytes(); err != nil {
		return m, err
	}
	return m, nil
}

func (d *dec) msgs() ([]Msg, error) {
	n, err := d.count(msgMinSize)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]Msg, n)
	for i := range out {
		if out[i], err = d.msg(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (e *enc) msgList(ms []Msg) {
	e.u32(uint32(len(ms)))
	for _, m := range ms {
		e.msg(m)
	}
}

// Batch sender-error kinds, mirroring the engine's validation errors.
const (
	BatchOK            = 0
	BatchErrTooLarge   = 1 // congest.ErrMessageTooLarge
	BatchErrBandwidth  = 2 // congest.ErrBandwidthExceeded
	BatchErrBadPort    = 3 // invalid port
	BatchErrProtocol   = 4 // any other node-program failure
	batchErrKindBounds = 5
)

// Batch is a worker's validated outgoing traffic for one round: Sub[t]
// holds the messages destined for shard t, in sender-vertex emission order.
// A nonzero ErrKind reports the shard's first validation failure (lowest
// sender vertex) instead; Sub is then empty.
type Batch struct {
	ErrKind   uint8
	ErrVertex int32
	ErrText   string
	Sub       [][]Msg
}

// Encode serializes the payload.
func (b Batch) Encode() []byte {
	var e enc
	e.u8(b.ErrKind)
	e.u32(uint32(b.ErrVertex))
	e.str(b.ErrText)
	e.u32(uint32(len(b.Sub)))
	for _, sub := range b.Sub {
		e.msgList(sub)
	}
	return e.b
}

// DecodeBatch parses a TypeBatch payload.
func DecodeBatch(p []byte) (Batch, error) {
	d := dec{p}
	var b Batch
	var err error
	if b.ErrKind, err = d.u8(); err != nil {
		return b, err
	}
	if b.ErrKind >= batchErrKindBounds {
		return b, fmt.Errorf("%w: batch error kind %d", ErrBadType, b.ErrKind)
	}
	ev, err := d.u32()
	if err != nil {
		return b, err
	}
	b.ErrVertex = int32(ev)
	if b.ErrText, err = d.str(); err != nil {
		return b, err
	}
	nsub, err := d.count(4) // each sub-batch is at least its own count field
	if err != nil {
		return b, err
	}
	if nsub > 0 {
		b.Sub = make([][]Msg, nsub)
		for i := range b.Sub {
			if b.Sub[i], err = d.msgs(); err != nil {
				return b, err
			}
		}
	}
	return b, d.done()
}

// Deliver is the coordinator's merged incoming traffic for one receiver
// shard: Delayed holds fault-deferred copies due this round (delivered
// before normal traffic, like the engine's flushDelayed), Msgs the round's
// normal traffic concatenated over sender shards in shard-index order —
// which is global sender-vertex order.
type Deliver struct {
	Delayed []Msg
	Msgs    []Msg
}

// Encode serializes the payload.
func (dl Deliver) Encode() []byte {
	var e enc
	e.msgList(dl.Delayed)
	e.msgList(dl.Msgs)
	return e.b
}

// DecodeDeliver parses a TypeDeliver payload.
func DecodeDeliver(p []byte) (Deliver, error) {
	d := dec{p}
	var dl Deliver
	var err error
	if dl.Delayed, err = d.msgs(); err != nil {
		return dl, err
	}
	if dl.Msgs, err = d.msgs(); err != nil {
		return dl, err
	}
	return dl, d.done()
}

// Event is one receiver-observed delivery, keyed (From, Seq) for the
// coordinator's deterministic trace merge.
type Event struct {
	From, Seq, To, Port, Bits int32
	Kind                      string
}

const eventMinSize = 5*4 + 4

// Report closes a worker's round: the delivery counters its shard
// contributed (the same quantities engine.receiverShard accumulates),
// messages lost to halted receivers of delayed copies, the vertices that
// halted this round (ascending), and the trace events when tracing.
type Report struct {
	Messages   int64
	Bits       int64
	MaxMsgBits int32
	Lost       int64
	Halted     []int32
	Events     []Event
}

// Encode serializes the payload.
func (r Report) Encode() []byte {
	var e enc
	e.i64(r.Messages)
	e.i64(r.Bits)
	e.u32(uint32(r.MaxMsgBits))
	e.i64(r.Lost)
	e.u32(uint32(len(r.Halted)))
	for _, h := range r.Halted {
		e.u32(uint32(h))
	}
	e.u32(uint32(len(r.Events)))
	for _, ev := range r.Events {
		e.u32(uint32(ev.From))
		e.u32(uint32(ev.Seq))
		e.u32(uint32(ev.To))
		e.u32(uint32(ev.Port))
		e.u32(uint32(ev.Bits))
		e.str(ev.Kind)
	}
	return e.b
}

// DecodeReport parses a TypeReport payload.
func DecodeReport(p []byte) (Report, error) {
	d := dec{p}
	var r Report
	var err error
	if r.Messages, err = d.i64(); err != nil {
		return r, err
	}
	if r.Bits, err = d.i64(); err != nil {
		return r, err
	}
	mb, err := d.u32()
	if err != nil {
		return r, err
	}
	r.MaxMsgBits = int32(mb)
	if r.Lost, err = d.i64(); err != nil {
		return r, err
	}
	nh, err := d.count(4)
	if err != nil {
		return r, err
	}
	if nh > 0 {
		r.Halted = make([]int32, nh)
		for i := range r.Halted {
			v, err := d.u32()
			if err != nil {
				return r, err
			}
			r.Halted[i] = int32(v)
		}
	}
	nev, err := d.count(eventMinSize)
	if err != nil {
		return r, err
	}
	if nev > 0 {
		r.Events = make([]Event, nev)
		for i := range r.Events {
			var f [5]uint32
			for j := range f {
				if f[j], err = d.u32(); err != nil {
					return r, err
				}
			}
			kind, err := d.str()
			if err != nil {
				return r, err
			}
			r.Events[i] = Event{
				From: int32(f[0]), Seq: int32(f[1]), To: int32(f[2]),
				Port: int32(f[3]), Bits: int32(f[4]), Kind: kind,
			}
		}
	}
	return r, d.done()
}

// Outputs carries the worker's end-of-run results as opaque bytes (JSON at
// the session layer: per-vertex protocol outputs, reliability counters).
type Outputs struct {
	Data []byte
}

// Encode serializes the payload.
func (o Outputs) Encode() []byte {
	var e enc
	e.bytes(o.Data)
	return e.b
}

// DecodeOutputs parses a TypeOutputs payload.
func DecodeOutputs(p []byte) (Outputs, error) {
	d := dec{p}
	var o Outputs
	var err error
	if o.Data, err = d.bytes(); err != nil {
		return o, err
	}
	return o, d.done()
}

// Abort tears a session down with a reason.
type Abort struct {
	Text string
}

// Encode serializes the payload.
func (a Abort) Encode() []byte {
	var e enc
	e.str(a.Text)
	return e.b
}

// DecodeAbort parses a TypeAbort payload.
func DecodeAbort(p []byte) (Abort, error) {
	d := dec{p}
	var a Abort
	var err error
	if a.Text, err = d.str(); err != nil {
		return a, err
	}
	return a, d.done()
}

// DecodePayload dispatches a frame's payload to its typed decoder. Step and
// Finish frames carry no payload (a non-empty one is ErrTrailing).
func DecodePayload(f Frame) (interface{}, error) {
	switch f.Type {
	case TypeHello:
		return DecodeHello(f.Payload)
	case TypeConfig:
		return DecodeConfig(f.Payload)
	case TypeReady:
		return DecodeReady(f.Payload)
	case TypeStep, TypeFinish:
		if len(f.Payload) != 0 {
			return nil, fmt.Errorf("%w: %d payload bytes on a bare frame", ErrTrailing, len(f.Payload))
		}
		return nil, nil
	case TypeBatch:
		return DecodeBatch(f.Payload)
	case TypeDeliver:
		return DecodeDeliver(f.Payload)
	case TypeReport:
		return DecodeReport(f.Payload)
	case TypeOutputs:
		return DecodeOutputs(f.Payload)
	case TypeAbort:
		return DecodeAbort(f.Payload)
	default:
		return nil, fmt.Errorf("%w: %d", ErrBadType, f.Type)
	}
}
