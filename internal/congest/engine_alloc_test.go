package congest

import (
	"testing"

	"repro/internal/graph/gen"
)

// steadyNode broadcasts a fixed 2-byte payload every round and never halts.
// Its outbox and payload are arrays inside the node so the node program
// itself performs zero heap allocations — any allocation AllocsPerRun sees
// below is the engine's.
type steadyNode struct {
	buf [2]byte
	out [1]Outgoing
}

func (c *steadyNode) Init(env *Env) []Outgoing {
	c.out[0] = Outgoing{Port: -1, Payload: c.buf[:]}
	return c.out[:]
}

func (c *steadyNode) Round(env *Env, inbox []Incoming) ([]Outgoing, bool) {
	for _, in := range inbox {
		c.buf[0] += in.Payload[0]
	}
	c.buf[1]++
	return c.out[:], false
}

// testSteadyAllocs drives the engine's round loop directly (via startRun /
// initPhase / stepRound) on an all-broadcast workload and returns the
// allocations per round after warm-up.
func testSteadyAllocs(t *testing.T, opts Options) float64 {
	t.Helper()
	g := gen.ConnectedSparseGNP(512, 8.0/512, 11)
	sim, err := NewSimulator(g, opts)
	if err != nil {
		t.Fatalf("NewSimulator: %v", err)
	}
	nodes := make([]steadyNode, g.NumVertices())
	scratch := newEngineScratch(sim.scratchLayout(g.NumVertices()))
	scratch.reset()
	e := sim.startRun(func(v int) Node { return &nodes[v] }, scratch)
	if e.pool != nil {
		defer e.pool.close()
	}
	if err := e.initPhase(); err != nil {
		t.Fatalf("initPhase: %v", err)
	}
	// Warm-up: let inboxes, arenas, and route buckets reach their
	// steady-state capacity.
	for i := 0; i < 8; i++ {
		if err := e.stepRound(); err != nil {
			t.Fatalf("warm-up round: %v", err)
		}
	}
	return testing.AllocsPerRun(50, func() {
		if err := e.stepRound(); err != nil {
			t.Fatalf("stepRound: %v", err)
		}
	})
}

// TestEngineSteadyStateZeroAllocs pins the steady-state round loop —
// compute, validate, route, deliver, compact — at zero heap allocations per
// round after warm-up, in both execution modes. This is the engine half of
// the million-node memory budget: per-round cost must be bounded by buffer
// reuse, not by n allocations a round.
func TestEngineSteadyStateZeroAllocs(t *testing.T) {
	if avg := testSteadyAllocs(t, Options{}); avg != 0 {
		t.Errorf("sequential steady-state round loop allocates %.1f objects/round, want 0", avg)
	}
	if avg := testSteadyAllocs(t, Options{Parallel: true, Workers: 2}); avg != 0 {
		t.Errorf("parallel steady-state round loop allocates %.1f objects/round, want 0", avg)
	}
}

// TestSortInboxStable pins sortInbox's contract on the rare out-of-order
// path (fault-delayed copies flushed ahead of normal traffic): ordered by
// port, stable within a port.
func TestSortInboxStable(t *testing.T) {
	inbox := []Incoming{
		{Port: 3, Payload: Message{0}},
		{Port: 1, Payload: Message{1}},
		{Port: 3, Payload: Message{2}},
		{Port: 0, Payload: Message{3}},
		{Port: 1, Payload: Message{4}},
	}
	sortInbox(inbox)
	want := []Incoming{
		{Port: 0, Payload: Message{3}},
		{Port: 1, Payload: Message{1}},
		{Port: 1, Payload: Message{4}},
		{Port: 3, Payload: Message{0}},
		{Port: 3, Payload: Message{2}},
	}
	for i := range want {
		if inbox[i].Port != want[i].Port || inbox[i].Payload[0] != want[i].Payload[0] {
			t.Fatalf("sortInbox[%d] = {%d %v}, want {%d %v}", i, inbox[i].Port, inbox[i].Payload, want[i].Port, want[i].Payload)
		}
	}
	sorted := []Incoming{{Port: 0}, {Port: 2}, {Port: 2}, {Port: 5}}
	sortInbox(sorted)
	for i := 1; i < len(sorted); i++ {
		if sorted[i].Port < sorted[i-1].Port {
			t.Fatalf("sorted input reordered at %d", i)
		}
	}
}
