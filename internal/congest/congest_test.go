package congest

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph/gen"
)

// floodMinNode floods the minimum ID seen; halts after a fixed number of
// rounds and records the result.
type floodMinNode struct {
	min      int
	rounds   int
	maxRound int
}

func (f *floodMinNode) Init(env *Env) []Outgoing {
	f.min = env.ID
	return []Outgoing{Broadcast(encodeID(f.min))}
}

func (f *floodMinNode) Round(env *Env, inbox []Incoming) ([]Outgoing, bool) {
	changed := false
	for _, in := range inbox {
		if id := decodeID(in.Payload); id < f.min {
			f.min = id
			changed = true
		}
	}
	f.rounds++
	if f.rounds >= f.maxRound {
		return nil, true
	}
	if changed {
		return []Outgoing{Broadcast(encodeID(f.min))}, false
	}
	return nil, false
}

func encodeID(id int) Message {
	return Message{byte(id), byte(id >> 8)}
}

func decodeID(m Message) int {
	return int(m[0]) | int(m[1])<<8
}

func TestFloodMin(t *testing.T) {
	g := gen.Path(10)
	sim, err := NewSimulator(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*floodMinNode, 10)
	stats, err := sim.Run(func(v int) Node {
		nodes[v] = &floodMinNode{maxRound: 12}
		return nodes[v]
	})
	if err != nil {
		t.Fatal(err)
	}
	for v, n := range nodes {
		if n.min != 1 {
			t.Fatalf("node %d: min = %d, want 1", v, n.min)
		}
	}
	if stats.Rounds != 12 {
		t.Fatalf("Rounds = %d, want 12", stats.Rounds)
	}
	if stats.Messages == 0 || stats.Bits == 0 {
		t.Fatal("stats should count messages and bits")
	}
	if stats.MaxMsgBits > stats.Bandwidth {
		t.Fatal("max message exceeds bandwidth")
	}
}

func TestAdversarialIDs(t *testing.T) {
	g := gen.Star(8)
	sim, err := NewSimulator(g, Options{IDSeed: 42})
	if err != nil {
		t.Fatal(err)
	}
	ids := sim.IDs()
	seen := map[int]bool{}
	for _, id := range ids {
		if id < 1 || id > 8 || seen[id] {
			t.Fatalf("bad ID assignment %v", ids)
		}
		seen[id] = true
	}
	// Different seeds give different permutations (with high probability).
	sim2, _ := NewSimulator(g, Options{IDSeed: 43})
	same := true
	for v, id := range sim2.IDs() {
		if ids[v] != id {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should permute IDs differently")
	}
	if sim.VertexOfID(ids[3]) != 3 {
		t.Fatal("VertexOfID inverse wrong")
	}
	if sim.VertexOfID(999) != -1 {
		t.Fatal("unknown ID should map to -1")
	}
}

type oversizedNode struct{}

func (oversizedNode) Init(env *Env) []Outgoing {
	return []Outgoing{Broadcast(make(Message, 1024))}
}

func (oversizedNode) Round(*Env, []Incoming) ([]Outgoing, bool) { return nil, true }

func TestBandwidthEnforced(t *testing.T) {
	g := gen.Path(4)
	sim, err := NewSimulator(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = sim.Run(func(int) Node { return oversizedNode{} })
	if !errors.Is(err, ErrMessageTooLarge) {
		t.Fatalf("err = %v, want ErrMessageTooLarge", err)
	}
	// Unbounded mode allows it.
	sim2, _ := NewSimulator(g, Options{Unbounded: true})
	if _, err := sim2.Run(func(int) Node { return oversizedNode{} }); err != nil {
		t.Fatalf("unbounded run failed: %v", err)
	}
}

type neverHaltNode struct{}

func (neverHaltNode) Init(*Env) []Outgoing                      { return nil }
func (neverHaltNode) Round(*Env, []Incoming) ([]Outgoing, bool) { return nil, false }

func TestRoundLimit(t *testing.T) {
	g := gen.Path(3)
	sim, err := NewSimulator(g, Options{RoundLimit: 50})
	if err != nil {
		t.Fatal(err)
	}
	_, err = sim.Run(func(int) Node { return neverHaltNode{} })
	if !errors.Is(err, ErrRoundLimit) {
		t.Fatalf("err = %v, want ErrRoundLimit", err)
	}
}

func TestSimulatorRejectsBadGraphs(t *testing.T) {
	dis, _ := gen.DisjointUnion(gen.Path(2), gen.Path(2))
	if _, err := NewSimulator(dis, Options{}); err == nil {
		t.Fatal("disconnected graph should be rejected")
	}
}

type envCheckNode struct {
	t       *testing.T
	sawInit bool
}

func (e *envCheckNode) Init(env *Env) []Outgoing {
	e.sawInit = true
	if env.Round != 0 {
		e.t.Error("Init should see round 0")
	}
	if env.Degree != len(env.NeighborIDs) {
		e.t.Error("degree/neighbor mismatch")
	}
	if env.Weight == 0 {
		e.t.Error("vertex weight not exposed")
	}
	if !env.Labels["sensor"] && env.ID == 1 {
		// Only vertex 0 is labeled; with default IDs vertex 0 has ID 1.
		e.t.Error("vertex label not exposed")
	}
	return nil
}

func (e *envCheckNode) Round(env *Env, inbox []Incoming) ([]Outgoing, bool) {
	return nil, true
}

func TestEnvCarriesLocalInput(t *testing.T) {
	g := gen.Path(3)
	for v := 0; v < 3; v++ {
		g.SetVertexWeight(v, int64(v+10))
	}
	g.SetVertexLabel("sensor", 0)
	eid, _ := g.EdgeBetween(0, 1)
	g.SetEdgeWeight(eid, 99)
	g.SetEdgeLabel("trunk", eid)
	sim, err := NewSimulator(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var captured []*Env
	_, err = sim.Run(func(v int) Node {
		n := &envCheckNode{t: t}
		return n
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = captured
}

func TestByteStreamRoundTrip(t *testing.T) {
	var s ByteStreamSender
	var r ByteStreamReceiver
	msgs := [][]byte{
		[]byte("hello"),
		{},
		bytes.Repeat([]byte{7}, 100),
		[]byte("x"),
	}
	for _, m := range msgs {
		s.Push(m)
	}
	budget := 3
	for {
		frame, ok := s.NextFrame(budget)
		if !ok {
			break
		}
		if len(frame) > budget {
			t.Fatalf("frame size %d > budget %d", len(frame), budget)
		}
		r.Feed(frame)
	}
	if s.Pending() {
		t.Fatal("sender should be drained")
	}
	for i, want := range msgs {
		got, ok := r.Pop()
		if !ok {
			t.Fatalf("message %d missing", i)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("message %d = %v, want %v", i, got, want)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("no more messages expected")
	}
}

func TestByteStreamPartialPop(t *testing.T) {
	var s ByteStreamSender
	var r ByteStreamReceiver
	s.Push([]byte("abcdef"))
	frame, _ := s.NextFrame(4)
	r.Feed(frame)
	if _, ok := r.Pop(); ok {
		t.Fatal("incomplete message should not pop")
	}
	for s.Pending() {
		frame, _ := s.NextFrame(4)
		r.Feed(frame)
	}
	got, ok := r.Pop()
	if !ok || string(got) != "abcdef" {
		t.Fatalf("got %q, %v", got, ok)
	}
}

func TestFrameBudgetBytes(t *testing.T) {
	if FrameBudgetBytes(32) != 4 || FrameBudgetBytes(7) != 1 || FrameBudgetBytes(0) != 1 {
		t.Fatal("FrameBudgetBytes wrong")
	}
}

// Property: any message sequence survives fragmentation at any budget.
func TestQuickStreamFragmentation(t *testing.T) {
	f := func(seed int64, budgetRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		budget := 1 + int(budgetRaw)%16
		var s ByteStreamSender
		var rc ByteStreamReceiver
		count := 1 + r.Intn(8)
		msgs := make([][]byte, count)
		for i := range msgs {
			msgs[i] = make([]byte, r.Intn(40))
			r.Read(msgs[i])
			s.Push(msgs[i])
		}
		for {
			frame, ok := s.NextFrame(budget)
			if !ok {
				break
			}
			rc.Feed(frame)
		}
		for _, want := range msgs {
			got, ok := rc.Pop()
			if !ok || !bytes.Equal(got, want) {
				return false
			}
		}
		_, extra := rc.Pop()
		return !extra
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParallelModeMatchesSequential(t *testing.T) {
	g := gen.Grid(4, 6)
	run := func(parallel bool) (Stats, []int) {
		sim, err := NewSimulator(g, Options{Parallel: parallel})
		if err != nil {
			t.Fatal(err)
		}
		nodes := make([]*floodMinNode, g.NumVertices())
		stats, err := sim.Run(func(v int) Node {
			nodes[v] = &floodMinNode{maxRound: 15}
			return nodes[v]
		})
		if err != nil {
			t.Fatal(err)
		}
		mins := make([]int, len(nodes))
		for v, n := range nodes {
			mins[v] = n.min
		}
		return stats, mins
	}
	serialStats, serialMins := run(false)
	parallelStats, parallelMins := run(true)
	if serialStats != parallelStats {
		t.Fatalf("stats differ: %+v vs %+v", serialStats, parallelStats)
	}
	for v := range serialMins {
		if serialMins[v] != parallelMins[v] {
			t.Fatalf("node %d state differs between modes", v)
		}
	}
}
