package congest

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// ReadTrace replays an NDJSON event stream into the given tracer (typically
// a *MetricsTracer), returning the number of events consumed. Blank lines
// are skipped; unknown event types are an error so that format drift is
// caught early.
func ReadTrace(r io.Reader, into Tracer) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	events, lineNo := 0, 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var raw struct {
			Ev    string `json:"ev"`
			Round int    `json:"round"`
			N     int    `json:"n"`
			Edges int    `json:"edges"`
			BW    int    `json:"bandwidth"`
			From  int    `json:"from"`
			To    int    `json:"to"`
			Port  int    `json:"port"`
			Bits  int64  `json:"bits"`
			Kind  string `json:"kind"`
			ID    int    `json:"id"`
			Act   int    `json:"active"`
			Hal   int    `json:"halted"`
			Rnds  int    `json:"rounds"`
			Msgs  int64  `json:"messages"`
			MaxMB int    `json:"maxMsgBits"`
			HaltN int    `json:"haltedNodes"`
			Det   int    `json:"detail"`
		}
		if err := json.Unmarshal(line, &raw); err != nil {
			return events, fmt.Errorf("congest: trace line %d: %w", lineNo, err)
		}
		switch raw.Ev {
		case "run_start":
			into.RunStart(RunInfo{N: raw.N, Edges: raw.Edges, Bandwidth: raw.BW})
		case "round_start":
			into.RoundStart(raw.Round)
		case "send":
			into.Send(SendEvent{
				Round: raw.Round, FromID: raw.From, ToID: raw.To,
				Port: raw.Port, SizeBits: int(raw.Bits), Kind: raw.Kind,
			})
		case "halt":
			into.NodeHalted(raw.Round, raw.ID)
		case "fault":
			// Fault lines replay into tracers that observe them and are
			// skipped (but still counted) for tracers that do not.
			if ft, ok := into.(FaultTracer); ok {
				ft.Fault(FaultEvent{
					Round: raw.Round, Kind: raw.Kind,
					FromID: raw.From, ToID: raw.To, Detail: raw.Det,
				})
			}
		case "round_end":
			into.RoundEnd(raw.Round, raw.Act, raw.Hal)
		case "run_end":
			into.RunEnd(Stats{
				Rounds: raw.Rnds, Messages: raw.Msgs, Bits: raw.Bits,
				MaxMsgBits: raw.MaxMB, Bandwidth: raw.BW, HaltedNodes: raw.HaltN,
			})
		default:
			return events, fmt.Errorf("congest: trace line %d: unknown event %q", lineNo, raw.Ev)
		}
		events++
	}
	if err := sc.Err(); err != nil {
		return events, fmt.Errorf("congest: trace read: %w", err)
	}
	return events, nil
}
