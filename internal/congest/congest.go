// Package congest implements a deterministic simulator for the CONGEST model
// of distributed computing (Peleg 2000): a synchronous network of nodes, one
// per graph vertex, where in each round every node may send one message of
// at most B = O(log n) bits to each neighbor. The simulator enforces the
// bandwidth cap on every edge in every round, assigns O(log n)-bit unique
// identifiers (optionally adversarially permuted), and accounts rounds,
// messages, and bits so that protocol round complexity can be measured
// exactly as the theory states it.
package congest

import (
	"context"
	"errors"
	"math/bits"
	"math/rand"
	"runtime"

	"repro/internal/graph"
)

// ErrMessageTooLarge is returned when a node sends a single message
// exceeding the per-edge per-round bandwidth.
var ErrMessageTooLarge = errors.New("congest: message exceeds bandwidth")

// ErrBandwidthExceeded is returned when the messages a node sends on one
// port in one round are individually within budget but together exceed the
// per-edge per-round bandwidth. The CONGEST cap is a property of the edge,
// not of any single message: k messages of B bits each on one port would
// push k*B bits over an edge that carries at most B per round.
var ErrBandwidthExceeded = errors.New("congest: per-edge bandwidth exceeded")

// ErrRoundLimit is returned when a protocol exceeds the configured maximum
// number of rounds without halting.
var ErrRoundLimit = errors.New("congest: round limit exceeded")

// ErrCanceled is returned when Options.Context is canceled mid-run; the
// underlying context error (context.Canceled or context.DeadlineExceeded)
// is wrapped and recoverable with errors.Is.
var ErrCanceled = errors.New("congest: run canceled")

// DefaultBandwidthFactor is the constant c in B = c * ceil(log2 n) bits.
const DefaultBandwidthFactor = 4

// DefaultRoundLimit caps simulations that fail to halt.
const DefaultRoundLimit = 1 << 20

// Message is a payload in flight on one edge. Its size in bits is 8*len.
type Message []byte

// Incoming pairs a received message with the port (neighbor index) it
// arrived on. An inbox is ordered by Port, and messages that share a port
// arrive in the order they were sent (delivery order is a documented
// guarantee, not an accident of the engine). Payload memory is owned by the
// simulator and is valid only for the duration of the Round call that
// receives it; nodes that keep bytes across rounds must copy them
// (ByteStreamReceiver.Feed already does).
type Incoming struct {
	Port    int
	Payload Message
}

// Node is the interface a protocol implements. A node knows only its own
// identifier, its degree, and whatever arrives in messages.
type Node interface {
	// Init is called once before round 1. Degree is the number of ports
	// (0..degree-1); port order is arbitrary but fixed. Send messages by
	// returning Outgoing entries.
	Init(env *Env) []Outgoing
	// Round is called every round with the messages received at the end of
	// the previous round. Returning halted = true stops this node: it sends
	// nothing further and receives nothing further; the simulation ends when
	// all nodes have halted.
	Round(env *Env, inbox []Incoming) (out []Outgoing, halted bool)
}

// Outgoing routes a payload to a port (-1 broadcasts to all ports).
type Outgoing struct {
	Port    int
	Payload Message
}

// Broadcast builds an Outgoing that sends the payload on every port.
func Broadcast(payload Message) Outgoing { return Outgoing{Port: -1, Payload: payload} }

// Env exposes the node-local view of the network.
type Env struct {
	// ID is the node's unique O(log n)-bit identifier.
	ID int
	// Degree is the number of incident edges (ports 0..Degree-1).
	Degree int
	// NeighborIDs[p] is the identifier of the neighbor on port p. In CONGEST
	// nodes learn neighbor IDs in one round; the simulator provides them
	// up front and charges the protocol nothing, as is standard.
	NeighborIDs []int
	// Bandwidth is the per-edge per-round message budget in bits.
	Bandwidth int
	// N is the number of nodes (known to nodes, as usual in CONGEST).
	N int
	// Round is the current round number (1-based; 0 during Init).
	Round int
	// Weight and Labels carry the node's local input (vertex weight and
	// unary predicates), part of the input assignment in the labeled-graph
	// setting of the paper.
	Weight int64
	Labels map[string]bool
	// PortWeight and PortLabels carry local edge inputs per port.
	PortWeight []int64
	PortLabels []map[string]bool

	// kind is the node's current message tag, set via Tag. It is read by
	// the simulator's (serial) delivery loop only.
	kind string
}

// Tag labels all messages this node sends from now on with the given
// protocol-defined kind, until retagged. Tags are observability metadata
// only: they cost no bandwidth, carry no information between nodes, and are
// ignored entirely unless a Tracer is installed. Protocols typically tag at
// phase transitions ("elim", "bag", "table", ...), which gives per-phase
// round/bit breakdowns in the captured trace.
func (e *Env) Tag(kind string) { e.kind = kind }

// Kind returns the node's current message tag (the last value passed to
// Tag). Protocol adapters that interpose between the simulator and an inner
// node use it to forward the inner node's phase tags to the real Env.
func (e *Env) Kind() string { return e.kind }

// Stats aggregates the cost of a simulation.
type Stats struct {
	Rounds      int
	Messages    int64
	Bits        int64
	MaxMsgBits  int // largest single message
	Bandwidth   int // enforced per-edge per-round budget in bits
	HaltedNodes int
	// Faults aggregates what the installed FaultInjector did to the run
	// (all zero when Options.Injector is nil).
	Faults FaultStats
}

// FaultStats counts injected faults. Messages/Bits above count what was
// actually delivered; these counters account for the difference.
type FaultStats struct {
	// Dropped counts messages the injector discarded at send time.
	Dropped int64
	// Duplicated counts extra copies the injector delivered.
	Duplicated int64
	// Delayed counts messages (or copies) deferred past their normal
	// delivery round.
	Delayed int64
	// Lost counts messages that were en route or queued when their receiver
	// halted or crashed: cleared inbox entries of down nodes plus delayed
	// copies whose receiver halted before the due round.
	Lost int64
	// CrashRounds is the total node-rounds spent down (crashed).
	CrashRounds int64
}

// FaultPlan is an injector's verdict on one validated message. The zero
// value means normal, on-time delivery.
type FaultPlan struct {
	// Drop discards the original copy.
	Drop bool
	// Delay defers the original copy by this many extra rounds (a message
	// sent in round r normally arrives for round r+1; with Delay d it
	// arrives for round r+1+d). Ignored when Drop is set.
	Delay int
	// Dup delivers this many extra copies, each deferred by DupDelay.
	Dup      int
	DupDelay int
}

// FaultInjector decides the fate of every message and the up/down state of
// every node. Implementations must be deterministic functions of their own
// seeded state: the engine calls RunStart once per run, RoundStart serially
// at the top of every round, OnSend serially in global sender-vertex
// delivery order, and NodeDown as a pure lookup (it may be called
// concurrently after RoundStart returns). Vertices, not IDs, identify
// endpoints so a schedule is independent of the ID permutation.
//
// Installing an injector routes delivery through the engine's serial pass
// (like a Tracer), so the injected fault stream is identical for any
// Options.Workers value.
type FaultInjector interface {
	// RunStart resets the injector for an n-vertex run (re-seeding any
	// internal randomness, so reusing Options replays the same faults).
	RunStart(n int)
	// RoundStart is called once per round (1-based) before node programs
	// execute; crash windows opening in this round must be decided here.
	RoundStart(round int)
	// NodeDown reports whether the vertex is down (crashed) in the round.
	// A down node does not execute, loses its pending inbox, and receives
	// nothing; its protocol state survives the outage (crash-restart with
	// stable memory). Round 0 (Init) is never down.
	NodeDown(round, vertex int) bool
	// OnSend plans the fate of one message from vertex `from` to vertex
	// `to` in the given round.
	OnSend(round, from, to int) FaultPlan
}

// Options configure a simulation.
type Options struct {
	// BandwidthFactor is c in B = c*ceil(log2 n); 0 means
	// DefaultBandwidthFactor.
	BandwidthFactor int
	// RoundLimit caps rounds; 0 means DefaultRoundLimit.
	RoundLimit int
	// IDSeed permutes node identifiers pseudo-randomly when nonzero,
	// modeling adversarial ID assignment. IDs remain unique and O(log n)
	// bits. When zero, node v gets ID v+1.
	IDSeed int64
	// Unbounded disables the bandwidth check (diagnostics only).
	Unbounded bool
	// CorruptProb flips one random bit in each delivered message with this
	// probability (fault injection for robustness testing); CorruptSeed
	// seeds the fault source.
	CorruptProb float64
	CorruptSeed int64
	// Parallel executes node programs concurrently within each round on a
	// persistent sharded worker pool (workers are spawned once per run, and
	// vertices are partitioned into contiguous shards with per-shard active
	// lists). Results are bit-identical to sequential execution: nodes share
	// no state, shards are contiguous vertex ranges, and delivery merges
	// shard outputs in deterministic vertex order either way.
	Parallel bool
	// Workers is the worker-pool size used when Parallel is set; 0 means
	// GOMAXPROCS. The value never affects results, only scheduling.
	Workers int
	// Tracer observes the run at round and message granularity (nil
	// disables tracing at no measurable cost). Hooks run on the delivery
	// loop, serially and in sender-vertex order, in both execution modes:
	// when a Tracer is installed (or CorruptProb is nonzero) the engine
	// routes messages on its serial path so event order and the fault
	// stream stay deterministic, while node programs still execute on the
	// worker pool.
	Tracer Tracer
	// Injector subjects the run to message drops, duplication, delays, and
	// node crashes (nil means a fault-free network). Like a Tracer, an
	// installed injector routes delivery through the serial pass so the
	// fault stream is deterministic at any worker count.
	Injector FaultInjector
	// Context, when non-nil, cancels the simulation: the engine checks it at
	// every round barrier and returns ctx.Err() (wrapped in ErrCanceled)
	// with the stats accumulated so far. Cancellation never affects the
	// result of a run that completes — it only bounds how long a run may
	// take, which is what a serving deadline needs.
	Context context.Context
	// Scratch, when non-nil, recycles the engine's per-run buffer state
	// (inboxes, arenas, shard routes) across simulations with the same
	// layout. Share one pool across a process; results are unaffected.
	Scratch *ScratchPool
}

// BandwidthBits reports the per-edge per-round budget these options yield on
// an n-node network. Exported so protocol adapters can size their frames
// before a run exists.
func (o Options) BandwidthBits(n int) int { return o.bandwidth(n) }

// bandwidth computes the per-edge budget B = factor * ceil(log2 n) bits for
// an n-node network (with ceil(log2 n) floored at 1 so single-node networks
// get a budget). The result is floored at 8 bits so that byte-aligned
// frames always fit.
func (o Options) bandwidth(n int) int {
	factor := o.BandwidthFactor
	if factor == 0 {
		factor = DefaultBandwidthFactor
	}
	// bits.Len(n-1) is exactly ceil(log2 n) for n >= 1.
	logn := bits.Len(uint(n - 1))
	if logn < 1 {
		logn = 1
	}
	b := factor * logn
	if b < 8 {
		b = 8
	}
	return b
}

// workerCount resolves Options.Workers against GOMAXPROCS.
func (o Options) workerCount() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// csrAdj is the simulator's compressed-sparse-row adjacency: one offset
// array plus flat per-port arrays, built once at construction and shared
// read-only by every shard. Port p of vertex v lives at index off[v]+p.
// Compared to per-vertex slices-of-slices plus a neighbor->port map per
// vertex, CSR removes ~n slice headers and n maps from the hot path, keeps
// delivery lookups at two array indexings, and packs the whole topology into
// four cache-friendly arrays (int32 is ample: vertices, ports, and edge IDs
// all stay far below 2^31 at the n = 10^6 scale the engine targets).
type csrAdj struct {
	off []int32 // len n+1: ports of v are [off[v], off[v+1])
	nbr []int32 // len 2m: neighbor vertex on (v, p), ascending per vertex
	// back[off[v]+p] is v's port number at the neighbor on (v, p) — the
	// receiver port of a message sent on (v, p). Precomputing it replaces the
	// per-delivery map lookup portsOf[w][v] of the slice-based layout.
	back []int32
	edge []int32 // len 2m: graph edge ID of (v, p)
}

// newCSR flattens g's (sorted) adjacency lists. The reverse-port array is
// filled with one counter per vertex: scanning senders v in ascending order
// visits each receiver w's neighbors in exactly w's sorted port order, so
// cnt[w] is v's port at w — no map and no binary search, O(n+m) total.
func newCSR(g *graph.Graph) *csrAdj {
	n := g.NumVertices()
	c := &csrAdj{off: make([]int32, n+1)}
	total := 0
	for v := 0; v < n; v++ {
		c.off[v] = int32(total)
		total += g.Degree(v)
	}
	c.off[n] = int32(total)
	c.nbr = make([]int32, total)
	c.back = make([]int32, total)
	c.edge = make([]int32, total)
	cnt := make([]int32, n)
	for v := 0; v < n; v++ {
		base := c.off[v]
		inc := g.IncidentEdges(v)
		for p, w := range g.Neighbors(v) {
			c.nbr[base+int32(p)] = int32(w)
			c.edge[base+int32(p)] = int32(inc[p])
			c.back[base+int32(p)] = cnt[w]
			cnt[w]++
		}
	}
	return c
}

// degree returns the number of ports of v.
func (c *csrAdj) degree(v int) int { return int(c.off[v+1] - c.off[v]) }

// ports returns the neighbor vertices of v, one per port, in port order.
// The returned slice aliases the shared CSR and must not be modified.
func (c *csrAdj) ports(v int32) []int32 { return c.nbr[c.off[v]:c.off[v+1]] }

// Simulator runs a Node program on every vertex of a graph.
type Simulator struct {
	g        *graph.Graph
	opts     Options
	ids      []int   // vertex -> ID
	idVertex []int32 // ID-1 -> vertex (IDs are a permutation of 1..n)
	csr      *csrAdj
}

// NewSimulator prepares a simulation over the given connected graph.
func NewSimulator(g *graph.Graph, opts Options) (*Simulator, error) {
	if g.NumVertices() == 0 {
		return nil, errors.New("congest: empty graph")
	}
	if !g.IsConnected() {
		return nil, errors.New("congest: graph must be connected")
	}
	n := g.NumVertices()
	ids := make([]int, n)
	for v := 0; v < n; v++ {
		ids[v] = v + 1
	}
	if opts.IDSeed != 0 {
		r := rand.New(rand.NewSource(opts.IDSeed))
		perm := r.Perm(n)
		for v := 0; v < n; v++ {
			ids[v] = perm[v] + 1
		}
	}
	idVertex := make([]int32, n)
	for v, id := range ids {
		idVertex[id-1] = int32(v)
	}
	return &Simulator{g: g, opts: opts, ids: ids, idVertex: idVertex, csr: newCSR(g)}, nil
}

// IDs returns a copy of the vertex -> identifier assignment.
func (s *Simulator) IDs() []int { return append([]int(nil), s.ids...) }

// VertexOfID returns the vertex with the given identifier, or -1. The
// lookup is O(1): IDs are a permutation of 1..n, so the inverse is a flat
// array built once in NewSimulator.
func (s *Simulator) VertexOfID(id int) int {
	if id < 1 || id > len(s.idVertex) {
		return -1
	}
	return int(s.idVertex[id-1])
}

// Run executes the protocol created by factory on every vertex until all
// nodes halt. factory receives the vertex index and must return a fresh Node
// (the vertex index is for instantiation only; protocols must not use it as
// knowledge — all runtime information flows through Env and messages).
//
// The run is simulated by a sharded engine (see engine.go): vertices are
// partitioned into contiguous shards, node programs execute shard-by-shard
// (on a persistent worker pool when Options.Parallel is set), and delivery
// is sharded by receiver with a deterministic merge in sender-vertex order,
// so sequential and parallel runs are bit-identical.
func (s *Simulator) Run(factory func(vertex int) Node) (Stats, error) {
	// Acquire the engine's recyclable buffer state here so the release is
	// paired with the acquire on every path out of the run, including an
	// engine error. Payloads handed to node programs are only valid during
	// their Round call, so nothing the caller keeps can alias the pooled
	// memory once run() returns.
	key := s.scratchLayout(s.g.NumVertices())
	if pool := s.opts.Scratch; pool != nil {
		scratch := pool.acquire(key)
		defer pool.release(scratch)
		return s.startRun(factory, scratch).run()
	}
	scratch := newEngineScratch(key)
	scratch.reset()
	return s.startRun(factory, scratch).run()
}

// startRun builds the node views and the engine for one run on the given
// (already reset) scratch. Split from Run so the allocation-regression
// tests can drive the engine's round loop directly under AllocsPerRun.
func (s *Simulator) startRun(factory func(vertex int) Node, scratch *engineScratch) *engine {
	n := s.g.NumVertices()
	bandwidth := s.opts.bandwidth(n)

	// Node views are built on flat arenas: one Env array for all vertices and
	// one backing slice per port-indexed field, sliced per vertex along the
	// CSR offsets. This replaces 3n+1 small allocations with 4 large ones and
	// keeps every vertex's view contiguous with its neighbors'. The label-name
	// lists are hoisted out of the loop (each call sorts a fresh copy), and
	// per-port label maps are only materialized when the graph actually
	// carries edge labels — readers index PortLabels[p][name], and a nil map
	// reads as all-false, so the slice of nil maps is the cheap common case.
	ports := int(s.csr.off[n])
	nodes := make([]Node, n)
	envs := make([]*Env, n)
	envArr := make([]Env, n)
	nbrIDArena := make([]int, ports)
	weightArena := make([]int64, ports)
	labelArena := make([]map[string]bool, ports)
	vertexLabelNames := s.g.VertexLabelNames()
	edgeLabelNames := s.g.EdgeLabelNames()
	for v := 0; v < n; v++ {
		nodes[v] = factory(v)
		lo, hi := s.csr.off[v], s.csr.off[v+1]
		nbrIDs := nbrIDArena[lo:hi:hi]
		portWeight := weightArena[lo:hi:hi]
		portLabels := labelArena[lo:hi:hi]
		for p := int32(0); p < hi-lo; p++ {
			nbrIDs[p] = s.ids[s.csr.nbr[lo+p]]
			eid := int(s.csr.edge[lo+p])
			portWeight[p] = s.g.EdgeWeight(eid)
			if len(edgeLabelNames) > 0 {
				labels := make(map[string]bool, len(edgeLabelNames))
				for _, name := range edgeLabelNames {
					if s.g.HasEdgeLabel(name, eid) {
						labels[name] = true
					}
				}
				portLabels[p] = labels
			}
		}
		var labels map[string]bool
		if len(vertexLabelNames) > 0 {
			labels = make(map[string]bool, len(vertexLabelNames))
			for _, name := range vertexLabelNames {
				if s.g.HasVertexLabel(name, v) {
					labels[name] = true
				}
			}
		}
		envArr[v] = Env{
			ID:          s.ids[v],
			Degree:      int(hi - lo),
			NeighborIDs: nbrIDs,
			Bandwidth:   bandwidth,
			N:           n,
			Weight:      s.g.VertexWeight(v),
			Labels:      labels,
			PortWeight:  portWeight,
			PortLabels:  portLabels,
		}
		envs[v] = &envArr[v]
	}

	return newEngine(s, nodes, envs, bandwidth, scratch)
}
