// Package congest implements a deterministic simulator for the CONGEST model
// of distributed computing (Peleg 2000): a synchronous network of nodes, one
// per graph vertex, where in each round every node may send one message of
// at most B = O(log n) bits to each neighbor. The simulator enforces the
// bandwidth cap on every edge in every round, assigns O(log n)-bit unique
// identifiers (optionally adversarially permuted), and accounts rounds,
// messages, and bits so that protocol round complexity can be measured
// exactly as the theory states it.
package congest

import (
	"errors"
	"fmt"
	"math/bits"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/graph"
)

// ErrMessageTooLarge is returned when a node sends a message exceeding the
// per-edge per-round bandwidth.
var ErrMessageTooLarge = errors.New("congest: message exceeds bandwidth")

// ErrRoundLimit is returned when a protocol exceeds the configured maximum
// number of rounds without halting.
var ErrRoundLimit = errors.New("congest: round limit exceeded")

// DefaultBandwidthFactor is the constant c in B = c * ceil(log2 n) bits.
const DefaultBandwidthFactor = 4

// DefaultRoundLimit caps simulations that fail to halt.
const DefaultRoundLimit = 1 << 20

// Message is a payload in flight on one edge. Its size in bits is 8*len.
type Message []byte

// Incoming pairs a received message with the port (neighbor index) it
// arrived on.
type Incoming struct {
	Port    int
	Payload Message
}

// Node is the interface a protocol implements. A node knows only its own
// identifier, its degree, and whatever arrives in messages.
type Node interface {
	// Init is called once before round 1. Degree is the number of ports
	// (0..degree-1); port order is arbitrary but fixed. Send messages by
	// returning Outgoing entries.
	Init(env *Env) []Outgoing
	// Round is called every round with the messages received at the end of
	// the previous round. Returning halted = true stops this node: it sends
	// nothing further and receives nothing further; the simulation ends when
	// all nodes have halted.
	Round(env *Env, inbox []Incoming) (out []Outgoing, halted bool)
}

// Outgoing routes a payload to a port (-1 broadcasts to all ports).
type Outgoing struct {
	Port    int
	Payload Message
}

// Broadcast builds an Outgoing that sends the payload on every port.
func Broadcast(payload Message) Outgoing { return Outgoing{Port: -1, Payload: payload} }

// Env exposes the node-local view of the network.
type Env struct {
	// ID is the node's unique O(log n)-bit identifier.
	ID int
	// Degree is the number of incident edges (ports 0..Degree-1).
	Degree int
	// NeighborIDs[p] is the identifier of the neighbor on port p. In CONGEST
	// nodes learn neighbor IDs in one round; the simulator provides them
	// up front and charges the protocol nothing, as is standard.
	NeighborIDs []int
	// Bandwidth is the per-edge per-round message budget in bits.
	Bandwidth int
	// N is the number of nodes (known to nodes, as usual in CONGEST).
	N int
	// Round is the current round number (1-based; 0 during Init).
	Round int
	// Weight and Labels carry the node's local input (vertex weight and
	// unary predicates), part of the input assignment in the labeled-graph
	// setting of the paper.
	Weight int64
	Labels map[string]bool
	// PortWeight and PortLabels carry local edge inputs per port.
	PortWeight []int64
	PortLabels []map[string]bool

	// kind is the node's current message tag, set via Tag. It is read by
	// the simulator's (serial) delivery loop only.
	kind string
}

// Tag labels all messages this node sends from now on with the given
// protocol-defined kind, until retagged. Tags are observability metadata
// only: they cost no bandwidth, carry no information between nodes, and are
// ignored entirely unless a Tracer is installed. Protocols typically tag at
// phase transitions ("elim", "bag", "table", ...), which gives per-phase
// round/bit breakdowns in the captured trace.
func (e *Env) Tag(kind string) { e.kind = kind }

// Stats aggregates the cost of a simulation.
type Stats struct {
	Rounds      int
	Messages    int64
	Bits        int64
	MaxMsgBits  int // largest single message
	Bandwidth   int // enforced per-edge per-round budget in bits
	HaltedNodes int
}

// Options configure a simulation.
type Options struct {
	// BandwidthFactor is c in B = c*ceil(log2 n); 0 means
	// DefaultBandwidthFactor.
	BandwidthFactor int
	// RoundLimit caps rounds; 0 means DefaultRoundLimit.
	RoundLimit int
	// IDSeed permutes node identifiers pseudo-randomly when nonzero,
	// modeling adversarial ID assignment. IDs remain unique and O(log n)
	// bits. When zero, node v gets ID v+1.
	IDSeed int64
	// Unbounded disables the bandwidth check (diagnostics only).
	Unbounded bool
	// CorruptProb flips one random bit in each delivered message with this
	// probability (fault injection for robustness testing); CorruptSeed
	// seeds the fault source.
	CorruptProb float64
	CorruptSeed int64
	// Parallel executes node programs concurrently within each round (one
	// goroutine per node, joined before delivery). Results are identical to
	// sequential execution: nodes share no state and messages are delivered
	// in vertex order either way.
	Parallel bool
	// Tracer observes the run at round and message granularity (nil
	// disables tracing at no measurable cost). Hooks run on the delivery
	// loop, serially, in both execution modes.
	Tracer Tracer
}

// Bandwidth computes the per-edge budget in bits for an n-node network.
// The result is floored at 8 bits so that byte-aligned frames always fit.
func (o Options) bandwidth(n int) int {
	factor := o.BandwidthFactor
	if factor == 0 {
		factor = DefaultBandwidthFactor
	}
	logn := bits.Len(uint(n))
	if logn < 1 {
		logn = 1
	}
	b := factor * logn
	if b < 8 {
		b = 8
	}
	return b
}

// Simulator runs a Node program on every vertex of a graph.
type Simulator struct {
	g        *graph.Graph
	opts     Options
	ids      []int       // vertex -> ID
	idVertex map[int]int // ID -> vertex
	ports    [][]int
	portsOf  []map[int]int // vertex -> neighbor vertex -> port
}

// NewSimulator prepares a simulation over the given connected graph.
func NewSimulator(g *graph.Graph, opts Options) (*Simulator, error) {
	if g.NumVertices() == 0 {
		return nil, errors.New("congest: empty graph")
	}
	if !g.IsConnected() {
		return nil, errors.New("congest: graph must be connected")
	}
	n := g.NumVertices()
	ids := make([]int, n)
	for v := 0; v < n; v++ {
		ids[v] = v + 1
	}
	if opts.IDSeed != 0 {
		r := rand.New(rand.NewSource(opts.IDSeed))
		perm := r.Perm(n)
		for v := 0; v < n; v++ {
			ids[v] = perm[v] + 1
		}
	}
	idVertex := make(map[int]int, n)
	for v, id := range ids {
		idVertex[id] = v
	}
	ports := make([][]int, n)
	portsOf := make([]map[int]int, n)
	for v := 0; v < n; v++ {
		nbrs := g.Neighbors(v)
		ports[v] = append([]int(nil), nbrs...)
		portsOf[v] = make(map[int]int, len(nbrs))
		for p, w := range nbrs {
			portsOf[v][w] = p
		}
	}
	return &Simulator{g: g, opts: opts, ids: ids, idVertex: idVertex, ports: ports, portsOf: portsOf}, nil
}

// IDs returns a copy of the vertex -> identifier assignment.
func (s *Simulator) IDs() []int { return append([]int(nil), s.ids...) }

// VertexOfID returns the vertex with the given identifier, or -1. The
// lookup is O(1): the ID -> vertex index is built once in NewSimulator.
func (s *Simulator) VertexOfID(id int) int {
	if v, ok := s.idVertex[id]; ok {
		return v
	}
	return -1
}

// Run executes the protocol created by factory on every vertex until all
// nodes halt. factory receives the vertex index and must return a fresh Node
// (the vertex index is for instantiation only; protocols must not use it as
// knowledge — all runtime information flows through Env and messages).
func (s *Simulator) Run(factory func(vertex int) Node) (Stats, error) {
	n := s.g.NumVertices()
	bandwidth := s.opts.bandwidth(n)
	limit := s.opts.RoundLimit
	if limit == 0 {
		limit = DefaultRoundLimit
	}

	nodes := make([]Node, n)
	envs := make([]*Env, n)
	for v := 0; v < n; v++ {
		nodes[v] = factory(v)
		nbrIDs := make([]int, len(s.ports[v]))
		portWeight := make([]int64, len(s.ports[v]))
		portLabels := make([]map[string]bool, len(s.ports[v]))
		for p, w := range s.ports[v] {
			nbrIDs[p] = s.ids[w]
			if eid, ok := s.g.EdgeBetween(v, w); ok {
				portWeight[p] = s.g.EdgeWeight(eid)
				labels := map[string]bool{}
				for _, name := range s.g.EdgeLabelNames() {
					if s.g.HasEdgeLabel(name, eid) {
						labels[name] = true
					}
				}
				portLabels[p] = labels
			}
		}
		labels := map[string]bool{}
		for _, name := range s.g.VertexLabelNames() {
			if s.g.HasVertexLabel(name, v) {
				labels[name] = true
			}
		}
		envs[v] = &Env{
			ID:          s.ids[v],
			Degree:      len(s.ports[v]),
			NeighborIDs: nbrIDs,
			Bandwidth:   bandwidth,
			N:           n,
			Weight:      s.g.VertexWeight(v),
			Labels:      labels,
			PortWeight:  portWeight,
			PortLabels:  portLabels,
		}
	}

	stats := Stats{Bandwidth: bandwidth}
	trace := traceSink{t: s.opts.Tracer}
	trace.runStart(RunInfo{N: n, Edges: s.g.NumEdges(), Bandwidth: bandwidth})
	var faults *rand.Rand
	if s.opts.CorruptProb > 0 {
		faults = rand.New(rand.NewSource(s.opts.CorruptSeed))
	}
	halted := make([]bool, n)
	haltedCount := 0
	// outboxes[v] = messages sent by v this round; inboxes built per round.
	inboxes := make([][]Incoming, n)

	curRound := 0
	deliver := func(v int, out []Outgoing) error {
		for _, o := range out {
			targets := []int{o.Port}
			if o.Port == -1 {
				targets = targets[:0]
				for p := range s.ports[v] {
					targets = append(targets, p)
				}
			}
			for _, p := range targets {
				if p < 0 || p >= len(s.ports[v]) {
					return fmt.Errorf("congest: node %d sent to invalid port %d", s.ids[v], p)
				}
				sizeBits := 8 * len(o.Payload)
				if !s.opts.Unbounded && sizeBits > bandwidth {
					return fmt.Errorf("%w: %d bits > %d-bit budget (node %d, port %d)",
						ErrMessageTooLarge, sizeBits, bandwidth, s.ids[v], p)
				}
				w := s.ports[v][p]
				if halted[w] {
					continue
				}
				payload := append(Message(nil), o.Payload...)
				if faults != nil && len(payload) > 0 && faults.Float64() < s.opts.CorruptProb {
					i := faults.Intn(len(payload))
					payload[i] ^= 1 << uint(faults.Intn(8))
				}
				recvPort := s.portsOf[w][v]
				inboxes[w] = append(inboxes[w], Incoming{Port: recvPort, Payload: payload})
				stats.Messages++
				stats.Bits += int64(sizeBits)
				if sizeBits > stats.MaxMsgBits {
					stats.MaxMsgBits = sizeBits
				}
				if trace.enabled() {
					trace.send(SendEvent{
						Round: curRound, FromID: s.ids[v], ToID: s.ids[w],
						Port: recvPort, SizeBits: sizeBits, Kind: envs[v].kind,
					})
				}
			}
		}
		return nil
	}

	// Init phase (round 0).
	trace.roundStart(0)
	for v := 0; v < n; v++ {
		envs[v].Round = 0
		out := nodes[v].Init(envs[v])
		if err := deliver(v, out); err != nil {
			trace.runEnd(stats)
			return stats, err
		}
	}
	trace.roundEnd(0, n, 0)

	outs := make([][]Outgoing, n)
	dones := make([]bool, n)
	for round := 1; haltedCount < n; round++ {
		if round > limit {
			trace.runEnd(stats)
			return stats, fmt.Errorf("%w: %d rounds", ErrRoundLimit, limit)
		}
		stats.Rounds = round
		curRound = round
		trace.roundStart(round)
		current := inboxes
		inboxes = make([][]Incoming, n)
		step := func(v int) {
			envs[v].Round = round
			inbox := current[v]
			sort.Slice(inbox, func(i, j int) bool { return inbox[i].Port < inbox[j].Port })
			outs[v], dones[v] = nodes[v].Round(envs[v], inbox)
		}
		if s.opts.Parallel {
			var wg sync.WaitGroup
			for v := 0; v < n; v++ {
				if halted[v] {
					continue
				}
				wg.Add(1)
				go func(v int) {
					defer wg.Done()
					step(v)
				}(v)
			}
			wg.Wait()
		} else {
			for v := 0; v < n; v++ {
				if !halted[v] {
					step(v)
				}
			}
		}
		// Delivery is serial and in vertex order in both modes, so the two
		// execution modes are indistinguishable to the protocol.
		for v := 0; v < n; v++ {
			if halted[v] {
				continue
			}
			if err := deliver(v, outs[v]); err != nil {
				trace.runEnd(stats)
				return stats, err
			}
			outs[v] = nil
			if dones[v] {
				halted[v] = true
				haltedCount++
				trace.nodeHalted(round, s.ids[v])
			}
		}
		trace.roundEnd(round, n-haltedCount, haltedCount)
	}
	stats.HaltedNodes = haltedCount
	trace.runEnd(stats)
	return stats, nil
}
