package congest

import (
	"fmt"
	"testing"

	"repro/internal/graph"
	"repro/internal/graph/gen"
)

// heartbeatNode is the scaling-benchmark workload: every node broadcasts a
// 2-byte value each round for a fixed number of rounds, then halts. The
// per-round work is O(deg), so total simulator work is Θ(rounds * m) and the
// benchmark isolates engine overhead (scheduling, delivery, allocation)
// rather than protocol logic.
type heartbeatNode struct {
	rounds int
	max    int
	acc    int
}

func (h *heartbeatNode) Init(env *Env) []Outgoing {
	return []Outgoing{Broadcast(encodeID(env.ID & 0xFFFF))}
}

func (h *heartbeatNode) Round(env *Env, inbox []Incoming) ([]Outgoing, bool) {
	for _, in := range inbox {
		h.acc += decodeID(in.Payload)
	}
	h.rounds++
	if h.rounds >= h.max {
		return nil, true
	}
	return []Outgoing{Broadcast(encodeID(h.acc & 0xFFFF))}, false
}

func scalingGraph(family string, n int) *graph.Graph {
	switch family {
	case "path":
		return gen.Path(n)
	case "tree":
		return gen.RandomTree(n, 7)
	case "gnp":
		// Expected degree ~8; spine keeps it connected at any n.
		g := gen.RandomGNP(n, 8/float64(n), 11)
		for v := 1; v < n; v++ {
			if _, ok := g.EdgeBetween(v-1, v); !ok {
				g.MustAddEdge(v-1, v)
			}
		}
		return g
	default:
		panic("unknown family " + family)
	}
}

func benchScaling(b *testing.B, family string, n int, parallel bool) {
	g := scalingGraph(family, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim, err := NewSimulator(g, Options{Parallel: parallel})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Run(func(int) Node { return &heartbeatNode{max: 8} }); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScaling(b *testing.B) {
	for _, family := range []string{"path", "tree", "gnp"} {
		for _, n := range []int{10000, 100000} {
			for _, mode := range []string{"seq", "par"} {
				b.Run(fmt.Sprintf("%s/n=%d/%s", family, n, mode), func(b *testing.B) {
					benchScaling(b, family, n, mode == "par")
				})
			}
		}
	}
}
