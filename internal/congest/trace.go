package congest

import (
	"bufio"
	"fmt"
	"io"
	"sort"
)

// RunInfo describes a simulation to a Tracer before round 0.
type RunInfo struct {
	N         int // nodes
	Edges     int // undirected edges
	Bandwidth int // per-edge per-round budget in bits
}

// SendEvent describes one message crossing one edge. Round is the round in
// which the message was sent (0 = Init); delivery happens at the start of
// Round+1. Port is the *receiver's* port the message arrives on. Kind is the
// protocol-supplied tag of the sending node at send time (see Env.Tag), or
// "" when the protocol does not tag its traffic.
type SendEvent struct {
	Round    int
	FromID   int
	ToID     int
	Port     int
	SizeBits int
	Kind     string
}

// Tracer observes a simulation at round granularity. All hooks are invoked
// from the simulator's delivery loop, which is single-threaded even when
// Options.Parallel is set, so implementations need no locking. A nil Tracer
// in Options disables tracing with no measurable cost (a single pointer
// comparison per hook site).
type Tracer interface {
	// RunStart fires once, before Init (round 0) executes.
	RunStart(info RunInfo)
	// RoundStart fires before the nodes of the given round execute
	// (round 0 is the Init phase).
	RoundStart(round int)
	// Send fires for every message accepted for delivery (messages to
	// already-halted nodes are dropped uncounted, matching Stats).
	Send(e SendEvent)
	// NodeHalted fires when the node with the given ID halts in the round.
	NodeHalted(round, id int)
	// RoundEnd fires after delivery; active and halted are node counts at
	// the end of the round.
	RoundEnd(round, active, halted int)
	// RunEnd fires once with the final aggregate statistics.
	RunEnd(stats Stats)
}

// FaultEvent describes one fault injected by Options.Injector. Kind is one
// of "drop" (message discarded), "dup" (extra copy scheduled; Detail is its
// extra delay in rounds), "delay" (original copy deferred; Detail is the
// delay in rounds), "lost" (a copy arrived at a halted or crashed receiver,
// or could never be delivered), "crash" (node went down; FromID is the
// node), and "restart" (node came back up; FromID is the node).
type FaultEvent struct {
	Round  int
	Kind   string
	FromID int
	ToID   int // 0 for node events ("crash"/"restart")
	Detail int // delay in rounds for "delay"/"dup", else 0
}

// FaultTracer is an optional extension a Tracer may implement to observe
// injected faults. Like all tracer hooks, Fault is invoked serially from the
// delivery loop. Tracers that do not implement it simply see the surviving
// traffic.
type FaultTracer interface {
	Fault(e FaultEvent)
}

// traceSink wraps an optional Tracer with nil-guarded dispatch. Keeping the
// guard in one place lets tests assert that the disabled path allocates
// nothing per round. The FaultTracer assertion is cached at construction so
// the per-fault dispatch is a nil check, not a type assertion.
type traceSink struct {
	t  Tracer
	ft FaultTracer
}

func newTraceSink(t Tracer) traceSink {
	ts := traceSink{t: t}
	if ft, ok := t.(FaultTracer); ok {
		ts.ft = ft
	}
	return ts
}

func (ts traceSink) enabled() bool { return ts.t != nil }

func (ts traceSink) fault(e FaultEvent) {
	if ts.ft != nil {
		ts.ft.Fault(e)
	}
}

func (ts traceSink) runStart(info RunInfo) {
	if ts.t != nil {
		ts.t.RunStart(info)
	}
}

func (ts traceSink) roundStart(round int) {
	if ts.t != nil {
		ts.t.RoundStart(round)
	}
}

func (ts traceSink) send(e SendEvent) {
	if ts.t != nil {
		ts.t.Send(e)
	}
}

func (ts traceSink) nodeHalted(round, id int) {
	if ts.t != nil {
		ts.t.NodeHalted(round, id)
	}
}

func (ts traceSink) roundEnd(round, active, halted int) {
	if ts.t != nil {
		ts.t.RoundEnd(round, active, halted)
	}
}

func (ts traceSink) runEnd(stats Stats) {
	if ts.t != nil {
		ts.t.RunEnd(stats)
	}
}

// MultiTracer fans hooks out to several tracers in order.
type MultiTracer []Tracer

// RunStart implements Tracer.
func (m MultiTracer) RunStart(info RunInfo) {
	for _, t := range m {
		t.RunStart(info)
	}
}

// RoundStart implements Tracer.
func (m MultiTracer) RoundStart(round int) {
	for _, t := range m {
		t.RoundStart(round)
	}
}

// Send implements Tracer.
func (m MultiTracer) Send(e SendEvent) {
	for _, t := range m {
		t.Send(e)
	}
}

// NodeHalted implements Tracer.
func (m MultiTracer) NodeHalted(round, id int) {
	for _, t := range m {
		t.NodeHalted(round, id)
	}
}

// RoundEnd implements Tracer.
func (m MultiTracer) RoundEnd(round, active, halted int) {
	for _, t := range m {
		t.RoundEnd(round, active, halted)
	}
}

// RunEnd implements Tracer.
func (m MultiTracer) RunEnd(stats Stats) {
	for _, t := range m {
		t.RunEnd(stats)
	}
}

// Fault implements FaultTracer, forwarding to the members that observe
// faults.
func (m MultiTracer) Fault(e FaultEvent) {
	for _, t := range m {
		if ft, ok := t.(FaultTracer); ok {
			ft.Fault(e)
		}
	}
}

// RoundMetrics aggregates one round of a traced simulation.
type RoundMetrics struct {
	Round      int
	Messages   int64
	Bits       int64
	MaxMsgBits int
	Active     int // nodes still running at the end of the round
	Halted     int // nodes halted by the end of the round
}

// KindMetrics aggregates all traffic sharing one message kind. The empty
// kind collects untagged traffic.
type KindMetrics struct {
	Kind       string
	FirstRound int // first round a message of this kind was sent
	LastRound  int
	Rounds     int // number of distinct rounds with traffic of this kind
	Messages   int64
	Bits       int64
	MaxMsgBits int
}

// MetricsTracer aggregates per-round and per-kind histograms in memory.
// The zero value is ready to use; pass it as Options.Tracer and read the
// results after Run returns.
type MetricsTracer struct {
	info   RunInfo
	stats  Stats
	rounds []RoundMetrics
	kinds  map[string]*KindMetrics

	cur          RoundMetrics
	curRound     int
	curKindRound map[string]bool // kinds seen in the current round
	faultCounts  map[string]int64
}

// FaultCount is one injected-fault kind with its total for the run.
type FaultCount struct {
	Kind  string
	Count int64
}

// RunStart implements Tracer.
func (m *MetricsTracer) RunStart(info RunInfo) {
	m.info = info
	m.rounds = m.rounds[:0]
	m.kinds = make(map[string]*KindMetrics)
	m.curKindRound = make(map[string]bool)
	m.faultCounts = make(map[string]int64)
}

// RoundStart implements Tracer.
func (m *MetricsTracer) RoundStart(round int) {
	m.curRound = round
	m.cur = RoundMetrics{Round: round}
	for k := range m.curKindRound {
		delete(m.curKindRound, k)
	}
}

// Send implements Tracer.
func (m *MetricsTracer) Send(e SendEvent) {
	m.cur.Messages++
	m.cur.Bits += int64(e.SizeBits)
	if e.SizeBits > m.cur.MaxMsgBits {
		m.cur.MaxMsgBits = e.SizeBits
	}
	if m.kinds == nil {
		m.kinds = make(map[string]*KindMetrics)
	}
	km, ok := m.kinds[e.Kind]
	if !ok {
		km = &KindMetrics{Kind: e.Kind, FirstRound: e.Round, LastRound: e.Round}
		m.kinds[e.Kind] = km
	}
	km.Messages++
	km.Bits += int64(e.SizeBits)
	if e.SizeBits > km.MaxMsgBits {
		km.MaxMsgBits = e.SizeBits
	}
	if e.Round < km.FirstRound {
		km.FirstRound = e.Round
	}
	if e.Round > km.LastRound {
		km.LastRound = e.Round
	}
	if m.curKindRound == nil {
		m.curKindRound = make(map[string]bool)
	}
	if !m.curKindRound[e.Kind] {
		m.curKindRound[e.Kind] = true
		km.Rounds++
	}
}

// NodeHalted implements Tracer.
func (m *MetricsTracer) NodeHalted(round, id int) {}

// Fault implements FaultTracer, counting injected faults by kind.
func (m *MetricsTracer) Fault(e FaultEvent) {
	if m.faultCounts == nil {
		m.faultCounts = make(map[string]int64)
	}
	m.faultCounts[e.Kind]++
}

// FaultCounts returns the injected-fault totals by kind, sorted by kind
// name. Empty for fault-free runs.
func (m *MetricsTracer) FaultCounts() []FaultCount {
	out := make([]FaultCount, 0, len(m.faultCounts))
	for k, c := range m.faultCounts {
		out = append(out, FaultCount{Kind: k, Count: c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Kind < out[j].Kind })
	return out
}

// RoundEnd implements Tracer.
func (m *MetricsTracer) RoundEnd(round, active, halted int) {
	m.cur.Round = round
	m.cur.Active = active
	m.cur.Halted = halted
	m.rounds = append(m.rounds, m.cur)
}

// RunEnd implements Tracer.
func (m *MetricsTracer) RunEnd(stats Stats) { m.stats = stats }

// Info returns the run description captured at RunStart.
func (m *MetricsTracer) Info() RunInfo { return m.info }

// Stats returns the final aggregate statistics captured at RunEnd.
func (m *MetricsTracer) Stats() Stats { return m.stats }

// PerRound returns the per-round histogram (round 0 is the Init phase).
func (m *MetricsTracer) PerRound() []RoundMetrics { return m.rounds }

// PerKind returns the per-kind histogram, ordered by first appearance and
// then by name, so protocol phases come out in execution order.
func (m *MetricsTracer) PerKind() []KindMetrics {
	out := make([]KindMetrics, 0, len(m.kinds))
	for _, km := range m.kinds {
		out = append(out, *km)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].FirstRound != out[j].FirstRound {
			return out[i].FirstRound < out[j].FirstRound
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// Utilization returns the fraction of the network's total link capacity the
// run actually used: Bits / (rounds * 2m * B). Each undirected edge carries
// up to B bits in each direction per round. Returns 0 for empty runs.
func (m *MetricsTracer) Utilization() float64 {
	cap := int64(m.stats.Rounds) * 2 * int64(m.info.Edges) * int64(m.info.Bandwidth)
	if cap <= 0 {
		return 0
	}
	return float64(m.stats.Bits) / float64(cap)
}

// NDJSONTracer streams every trace event as one JSON object per line:
//
//	{"ev":"run_start","n":4,"edges":3,"bandwidth":12}
//	{"ev":"round_start","round":1}
//	{"ev":"send","round":1,"from":2,"to":3,"port":0,"bits":16,"kind":"elim"}
//	{"ev":"halt","round":9,"id":2}
//	{"ev":"round_end","round":1,"active":4,"halted":0}
//	{"ev":"run_end","rounds":9,"messages":42,"bits":672,"maxMsgBits":16,"bandwidth":12,"haltedNodes":4}
//
// Output is deterministic (fixed field order) so traces can be diffed and
// golden-tested. The writer is buffered; RunEnd flushes it, and any write
// error is latched and reported by Err.
type NDJSONTracer struct {
	w   *bufio.Writer
	err error
}

// NewNDJSONTracer wraps w in a streaming NDJSON event writer.
func NewNDJSONTracer(w io.Writer) *NDJSONTracer {
	return &NDJSONTracer{w: bufio.NewWriter(w)}
}

func (t *NDJSONTracer) printf(format string, args ...interface{}) {
	if t.err != nil {
		return
	}
	_, t.err = fmt.Fprintf(t.w, format, args...)
}

// RunStart implements Tracer.
func (t *NDJSONTracer) RunStart(info RunInfo) {
	t.printf("{\"ev\":\"run_start\",\"n\":%d,\"edges\":%d,\"bandwidth\":%d}\n",
		info.N, info.Edges, info.Bandwidth)
}

// RoundStart implements Tracer.
func (t *NDJSONTracer) RoundStart(round int) {
	t.printf("{\"ev\":\"round_start\",\"round\":%d}\n", round)
}

// Send implements Tracer.
func (t *NDJSONTracer) Send(e SendEvent) {
	t.printf("{\"ev\":\"send\",\"round\":%d,\"from\":%d,\"to\":%d,\"port\":%d,\"bits\":%d,\"kind\":%q}\n",
		e.Round, e.FromID, e.ToID, e.Port, e.SizeBits, e.Kind)
}

// Fault implements FaultTracer:
//
//	{"ev":"fault","round":3,"kind":"drop","from":2,"to":5,"detail":0}
//
// Fault lines appear only in runs with an installed Injector that actually
// injects something, so fault-free traces are byte-identical to traces taken
// before fault injection existed.
func (t *NDJSONTracer) Fault(e FaultEvent) {
	t.printf("{\"ev\":\"fault\",\"round\":%d,\"kind\":%q,\"from\":%d,\"to\":%d,\"detail\":%d}\n",
		e.Round, e.Kind, e.FromID, e.ToID, e.Detail)
}

// NodeHalted implements Tracer.
func (t *NDJSONTracer) NodeHalted(round, id int) {
	t.printf("{\"ev\":\"halt\",\"round\":%d,\"id\":%d}\n", round, id)
}

// RoundEnd implements Tracer.
func (t *NDJSONTracer) RoundEnd(round, active, halted int) {
	t.printf("{\"ev\":\"round_end\",\"round\":%d,\"active\":%d,\"halted\":%d}\n", round, active, halted)
}

// RunEnd implements Tracer.
func (t *NDJSONTracer) RunEnd(stats Stats) {
	t.printf("{\"ev\":\"run_end\",\"rounds\":%d,\"messages\":%d,\"bits\":%d,\"maxMsgBits\":%d,\"bandwidth\":%d,\"haltedNodes\":%d}\n",
		stats.Rounds, stats.Messages, stats.Bits, stats.MaxMsgBits, stats.Bandwidth, stats.HaltedNodes)
	if t.err == nil {
		t.err = t.w.Flush()
	}
}

// Flush forces buffered events out (RunEnd flushes automatically).
func (t *NDJSONTracer) Flush() error {
	if t.err != nil {
		return t.err
	}
	return t.w.Flush()
}

// Err returns the first write error encountered, if any.
func (t *NDJSONTracer) Err() error { return t.err }
