package congest

import (
	"context"
	"errors"
	"testing"

	"repro/internal/graph/gen"
)

// TestScratchPoolBitIdentical: runs recycling one pool's buffers must be
// bit-identical to fresh-allocation runs, across execution modes and
// repeated reuse of the same scratch.
func TestScratchPoolBitIdentical(t *testing.T) {
	g := gen.Grid(5, 7)
	run := func(opts Options) (Stats, []int) {
		sim, err := NewSimulator(g, opts)
		if err != nil {
			t.Fatal(err)
		}
		nodes := make([]*floodMinNode, g.NumVertices())
		stats, err := sim.Run(func(v int) Node {
			nodes[v] = &floodMinNode{maxRound: 15}
			return nodes[v]
		})
		if err != nil {
			t.Fatal(err)
		}
		mins := make([]int, len(nodes))
		for v, n := range nodes {
			mins[v] = n.min
		}
		return stats, mins
	}

	for _, parallel := range []bool{false, true} {
		base := Options{Parallel: parallel, Workers: 3, IDSeed: 99}
		wantStats, wantMins := run(base)
		pool := NewScratchPool()
		pooled := base
		pooled.Scratch = pool
		for rep := 0; rep < 3; rep++ {
			stats, mins := run(pooled)
			if stats != wantStats {
				t.Fatalf("parallel=%v rep %d: pooled stats %+v != fresh %+v", parallel, rep, stats, wantStats)
			}
			for v := range wantMins {
				if mins[v] != wantMins[v] {
					t.Fatalf("parallel=%v rep %d: node %d state differs under pooling", parallel, rep, v)
				}
			}
		}
		if pool.Idle() == 0 {
			t.Fatal("completed runs should have returned scratch to the pool")
		}
	}
}

// TestScratchPoolAfterError: a run that fails validation mid-round must
// still return its scratch, and the next run adopting it must be clean.
func TestScratchPoolAfterError(t *testing.T) {
	g := gen.Path(6)
	pool := NewScratchPool()
	opts := Options{Scratch: pool}
	sim, err := NewSimulator(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(func(int) Node { return badPortNode{} }); err == nil {
		t.Fatal("invalid port must error")
	}
	if pool.Idle() != 1 {
		t.Fatalf("Idle = %d after failed run, want 1", pool.Idle())
	}
	// The recycled scratch must not leak the failed run's state.
	sim2, err := NewSimulator(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := sim2.Run(func(int) Node { return &staggerNode{} })
	if err != nil {
		t.Fatal(err)
	}
	if stats.HaltedNodes != 6 {
		t.Fatalf("stats after adopting dirty scratch: %+v", stats)
	}
}

// TestContextCancellation: a canceled context stops the round loop with
// ErrCanceled wrapping the context's error, in both execution modes.
func TestContextCancellation(t *testing.T) {
	g := gen.Path(8)
	for _, parallel := range []bool{false, true} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel() // already canceled: the run must stop at the first barrier
		sim, err := NewSimulator(g, Options{Parallel: parallel, Workers: 2, Context: ctx})
		if err != nil {
			t.Fatal(err)
		}
		_, err = sim.Run(func(int) Node { return neverHaltNode{} })
		if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
			t.Fatalf("parallel=%v: err = %v, want ErrCanceled wrapping context.Canceled", parallel, err)
		}
	}
	// A nil context (the default) must not alter behavior: the same protocol
	// runs into the round limit instead.
	sim, err := NewSimulator(g, Options{RoundLimit: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(func(int) Node { return neverHaltNode{} }); !errors.Is(err, ErrRoundLimit) {
		t.Fatalf("err = %v, want ErrRoundLimit", err)
	}
}
