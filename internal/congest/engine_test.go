package congest

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/graph/gen"
)

// splitSendNode sends two same-port messages per round whose individual
// sizes respect the single-message cap; whether their sum respects the
// per-edge budget depends on the configured bandwidth. The seed simulator
// checked each message alone, so a pair totaling B+8 bits slipped through.
type splitSendNode struct {
	bytesEach int
	inInit    bool
}

func (s *splitSendNode) Init(env *Env) []Outgoing {
	if !s.inInit {
		return nil
	}
	return []Outgoing{
		{Port: 0, Payload: make(Message, s.bytesEach)},
		{Port: 0, Payload: make(Message, s.bytesEach)},
	}
}

func (s *splitSendNode) Round(env *Env, inbox []Incoming) ([]Outgoing, bool) {
	if s.inInit || env.Round > 1 {
		return nil, true
	}
	return []Outgoing{
		{Port: 0, Payload: make(Message, s.bytesEach)},
		{Port: 0, Payload: make(Message, s.bytesEach)},
	}, false
}

// TestAggregateBandwidthEnforced is the headline regression test: a node
// that splits B+8 bits across two same-port sends in one round must error,
// where the seed code (which checked each Outgoing alone) accepted it.
func TestAggregateBandwidthEnforced(t *testing.T) {
	g := gen.Path(4) // n=4: B = 4*ceil(log2 4) = 8 bits
	for _, tc := range []struct {
		name     string
		parallel bool
		inInit   bool
	}{
		{"sequential/round", false, false},
		{"parallel/round", true, false},
		{"sequential/init", false, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sim, err := NewSimulator(g, Options{Parallel: tc.parallel, Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			// Two 1-byte messages on one port: 8+8 = 16 bits > B = 8, though
			// each alone fits exactly.
			_, err = sim.Run(func(int) Node { return &splitSendNode{bytesEach: 1, inInit: tc.inInit} })
			if !errors.Is(err, ErrBandwidthExceeded) {
				t.Fatalf("err = %v, want ErrBandwidthExceeded", err)
			}
			if errors.Is(err, ErrMessageTooLarge) {
				t.Fatal("aggregate overflow must not masquerade as a single oversized message")
			}
		})
	}

	// The same pair under a doubled budget (B = 16) is legal.
	sim, err := NewSimulator(g, Options{BandwidthFactor: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(func(int) Node { return &splitSendNode{bytesEach: 1} }); err != nil {
		t.Fatalf("two sends within the aggregate budget must pass: %v", err)
	}

	// Unbounded mode disables the aggregate check like the per-message one.
	sim2, err := NewSimulator(g, Options{Unbounded: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim2.Run(func(int) Node { return &splitSendNode{bytesEach: 64} }); err != nil {
		t.Fatalf("unbounded run failed: %v", err)
	}
}

// TestBandwidthFormula pins B = factor * ceil(log2 n), floored at 8 bits.
// The seed used bits.Len(n) = floor(log2 n)+1, which over-granted whenever n
// is a power of two (n=8 got 16 bits instead of 12).
func TestBandwidthFormula(t *testing.T) {
	cases := []struct {
		n      int
		factor int
		want   int
	}{
		{1, 0, 8},     // ceil(log2 1) floored to 1 -> 4, floored to 8
		{2, 0, 8},     // 4*1 = 4 -> 8
		{8, 0, 12},    // 4*3 (seed: 4*4 = 16)
		{9, 0, 16},    // 4*4
		{1024, 0, 40}, // 4*10 (seed: 4*11 = 44)
		{8, 1, 8},     // 1*3 -> floor
		{9, 8, 32},    // 8*4
		{1024, 8, 80}, // 8*10
	}
	for _, tc := range cases {
		o := Options{BandwidthFactor: tc.factor}
		if got := o.bandwidth(tc.n); got != tc.want {
			t.Errorf("bandwidth(n=%d, factor=%d) = %d, want %d", tc.n, tc.factor, got, tc.want)
		}
	}
}

// orderSendNode (vertex with degree 1) sends two distinguishable same-port
// messages in one round; orderRecvNode records the exact arrival order.
type orderSendNode struct{}

func (orderSendNode) Init(*Env) []Outgoing { return nil }
func (orderSendNode) Round(env *Env, inbox []Incoming) ([]Outgoing, bool) {
	if env.Round > 1 {
		return nil, true
	}
	return []Outgoing{
		{Port: 0, Payload: Message{0xAA}},
		{Port: 0, Payload: Message{0xBB}},
	}, false
}

type orderRecvNode struct{ got []byte }

func (r *orderRecvNode) Init(*Env) []Outgoing { return nil }
func (r *orderRecvNode) Round(env *Env, inbox []Incoming) ([]Outgoing, bool) {
	for _, in := range inbox {
		r.got = append(r.got, in.Payload...)
	}
	return nil, env.Round >= 2
}

// TestSamePortDeliveryOrder: two messages sent on one port in one round are
// observed in send order — a documented guarantee since the stable inbox
// sort (the seed's non-stable sort keyed only on Port could legally swap
// them).
func TestSamePortDeliveryOrder(t *testing.T) {
	g := gen.Path(2) // n=2: B = 8; raise to 16 so the pair fits the budget
	for _, parallel := range []bool{false, true} {
		recv := &orderRecvNode{}
		sim, err := NewSimulator(g, Options{BandwidthFactor: 16, Parallel: parallel, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sim.Run(func(v int) Node {
			if v == 0 {
				return orderSendNode{}
			}
			return recv
		}); err != nil {
			t.Fatal(err)
		}
		if string(recv.got) != "\xaa\xbb" {
			t.Fatalf("parallel=%v: same-port messages out of send order: % x", parallel, recv.got)
		}
	}
}

// starProbeNode checks that a large inbox (the star center hears from every
// leaf, exercising the non-insertion sort path) comes out port-sorted.
type starProbeNode struct {
	t      *testing.T
	center bool
}

func (s *starProbeNode) Init(env *Env) []Outgoing {
	if s.center {
		return nil
	}
	return []Outgoing{{Port: 0, Payload: encodeID(env.ID)}}
}

func (s *starProbeNode) Round(env *Env, inbox []Incoming) ([]Outgoing, bool) {
	if s.center && env.Round == 1 {
		if len(inbox) != env.Degree {
			s.t.Errorf("center inbox has %d entries, want %d", len(inbox), env.Degree)
		}
		for i, in := range inbox {
			if in.Port != i {
				s.t.Errorf("inbox[%d].Port = %d, want ascending ports", i, in.Port)
			}
			if decodeID(in.Payload) != env.NeighborIDs[in.Port] {
				s.t.Errorf("inbox[%d] payload does not match sender on port %d", i, in.Port)
			}
		}
	}
	return nil, true
}

func TestLargeInboxPortOrder(t *testing.T) {
	g := gen.Star(64)
	for _, parallel := range []bool{false, true} {
		sim, err := NewSimulator(g, Options{Parallel: parallel, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sim.Run(func(v int) Node {
			return &starProbeNode{t: t, center: v == 0}
		}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestParallelWorkerCountsMatchSequential runs the flood-min protocol under
// adversarial IDs and fault injection across worker counts: every
// configuration must be bit-identical to the sequential run (same stats,
// same node states), for any shard layout.
func TestParallelWorkerCountsMatchSequential(t *testing.T) {
	g := gen.Grid(5, 7)
	type outcome struct {
		stats Stats
		mins  []int
	}
	run := func(parallel bool, workers int) outcome {
		sim, err := NewSimulator(g, Options{
			Parallel: parallel, Workers: workers,
			IDSeed: 99, CorruptProb: 0.2, CorruptSeed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes := make([]*floodMinNode, g.NumVertices())
		stats, err := sim.Run(func(v int) Node {
			nodes[v] = &floodMinNode{maxRound: 15}
			return nodes[v]
		})
		if err != nil {
			t.Fatal(err)
		}
		mins := make([]int, len(nodes))
		for v, n := range nodes {
			mins[v] = n.min
		}
		return outcome{stats, mins}
	}
	want := run(false, 0)
	for _, workers := range []int{1, 2, 3, 8} {
		got := run(true, workers)
		if got.stats != want.stats {
			t.Fatalf("workers=%d: stats %+v != sequential %+v", workers, got.stats, want.stats)
		}
		for v := range want.mins {
			if got.mins[v] != want.mins[v] {
				t.Fatalf("workers=%d: node %d state differs from sequential", workers, v)
			}
		}
	}
}

// badPortNode sends to a port it does not have.
type badPortNode struct{}

func (badPortNode) Init(*Env) []Outgoing { return nil }
func (badPortNode) Round(env *Env, inbox []Incoming) ([]Outgoing, bool) {
	return []Outgoing{{Port: env.Degree + 3, Payload: Message{1}}}, false
}

// TestInvalidPortErrorBothModes: validation errors surface identically (and
// deterministically) from the sharded and serial routing paths.
func TestInvalidPortErrorBothModes(t *testing.T) {
	g := gen.Path(6)
	var msgs []string
	for _, parallel := range []bool{false, true} {
		sim, err := NewSimulator(g, Options{Parallel: parallel, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		_, err = sim.Run(func(int) Node { return badPortNode{} })
		if err == nil {
			t.Fatal("invalid port must error")
		}
		msgs = append(msgs, err.Error())
	}
	if msgs[0] != msgs[1] {
		t.Fatalf("error differs between modes: %q vs %q", msgs[0], msgs[1])
	}
}

// TestActiveListShrinks pins the sharded engine's late-round behavior: a
// protocol where nodes halt one by one must not degrade — exercised here
// simply for correctness of active-list compaction (every node must still
// run its final round and the stats must account all halts).
func TestActiveListShrinks(t *testing.T) {
	g := gen.Path(30)
	for _, parallel := range []bool{false, true} {
		sim, err := NewSimulator(g, Options{Parallel: parallel, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		// Node with ID k halts in round k: staggered halting.
		stats, err := sim.Run(func(int) Node { return &staggerNode{} })
		if err != nil {
			t.Fatal(err)
		}
		if stats.HaltedNodes != 30 || stats.Rounds != 30 {
			t.Fatalf("parallel=%v: stats %+v, want 30 halts over 30 rounds", parallel, stats)
		}
	}
}

type staggerNode struct{ id int }

func (s *staggerNode) Init(env *Env) []Outgoing { s.id = env.ID; return nil }
func (s *staggerNode) Round(env *Env, inbox []Incoming) ([]Outgoing, bool) {
	return nil, env.Round >= s.id
}

func ExampleErrBandwidthExceeded() {
	g := gen.Path(4)
	sim, _ := NewSimulator(g, Options{})
	_, err := sim.Run(func(int) Node { return &splitSendNode{bytesEach: 1} })
	fmt.Println(errors.Is(err, ErrBandwidthExceeded))
	// Output: true
}
