// Package dmc (distributed model checking) is the public API of the
// reproduction of "Distributed Model Checking on Graphs of Bounded
// Treedepth" (Fomin, Fraigniaud, Montealegre, Rapaport, Todinca; PODC 2024).
//
// It decides, optimizes, verifies, and counts MSO-expressible graph
// properties on networks of bounded treedepth, in a simulated CONGEST model
// whose round count depends only on the treedepth parameter d and the
// formula — never on the network size:
//
//	g := dmc.NewGraph(5)
//	g.MustAddEdge(0, 1) // ... build the network
//	res, err := dmc.CheckFormula(g, "~ exists x:V,y:V,z:V . adj(x,y) & adj(y,z) & adj(z,x)", dmc.Options{D: 3})
//
// Three engines are available: the naive oracle (package mso, exponential,
// for ground truth), hand-compiled regular predicates (package predicates,
// fast), and the generic MSO compiler (package msoauto). All three plug into
// the same sequential Algorithm 1 driver and the same distributed protocol.
package dmc

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/certify"
	"repro/internal/congest"
	"repro/internal/expansion"
	"repro/internal/graph"
	"repro/internal/mso"
	"repro/internal/msoauto"
	"repro/internal/protocols"
	"repro/internal/regular"
	"repro/internal/regular/predicates"
)

// Graph is the network/input graph type (vertices 0..n-1, labeled and
// weighted edges and vertices).
type Graph = graph.Graph

// NewGraph returns an empty graph on n vertices.
func NewGraph(n int) *Graph { return graph.New(n) }

// Predicate is a regular graph predicate in the sense of Definition 4.1;
// obtain instances from the predicate constructors below or compile an MSO
// formula with CompileFormula.
type Predicate = regular.Predicate

// Options configure a distributed run.
type Options struct {
	// D is the treedepth parameter d: the protocol either solves the
	// problem or reports td(G) > D. Required (>= 1).
	D int
	// IDSeed permutes node identifiers adversarially (0 = identity).
	IDSeed int64
	// BandwidthFactor is c in the B = c*ceil(log2 n) CONGEST bandwidth
	// (0 = default).
	BandwidthFactor int
	// Maximize selects the optimization direction (Optimize/CheckMarked).
	Maximize bool
}

func (o Options) congest() congest.Options {
	return congest.Options{IDSeed: o.IDSeed, BandwidthFactor: o.BandwidthFactor}
}

// Stats is the CONGEST cost of a run.
type Stats = congest.Stats

// Result is the outcome of a distributed run.
type Result struct {
	// TdExceeded reports "large treedepth": td(G) > D (Theorem 6.1's second
	// outcome). All other fields are meaningless when set.
	TdExceeded bool
	// Accepted is the decision/verification verdict.
	Accepted bool
	// Found/Weight/Selected describe the optimization outcome; Selected
	// holds vertex indices or edge IDs depending on the predicate kind.
	Found         bool
	Weight        int64
	Selected      *bitset.Set
	SelectedEdges *bitset.Set
	// Count is the counting outcome.
	Count int64
	// Stats is the CONGEST cost (rounds, messages, bits, max message size).
	Stats Stats
}

func fromRun(r *protocols.RunResult) *Result {
	return &Result{
		TdExceeded:    r.TdExceeded,
		Accepted:      r.Accepted,
		Found:         r.Found,
		Weight:        r.Weight,
		Selected:      r.Selected,
		SelectedEdges: r.SelectedEdges,
		Count:         r.Count,
		Stats:         r.Stats,
	}
}

// Check decides a closed predicate on g in O(2^2d) CONGEST rounds
// (Theorem 6.1, decision).
func Check(g *Graph, pred Predicate, opts Options) (*Result, error) {
	r, err := protocols.Decide(g, opts.D, pred, opts.congest())
	if err != nil {
		return nil, err
	}
	return fromRun(r), nil
}

// Optimize solves maxφ/minφ for a predicate with a free set variable and
// selects an optimal solution (each node learns its membership); Theorem
// 6.1, optimization.
func Optimize(g *Graph, pred Predicate, opts Options) (*Result, error) {
	r, err := protocols.Optimize(g, opts.D, pred, opts.Maximize, opts.congest())
	if err != nil {
		return nil, err
	}
	return fromRun(r), nil
}

// Count counts the satisfying assignments of the predicate's free set
// variable (Section 6, counting).
func Count(g *Graph, pred Predicate, opts Options) (*Result, error) {
	r, err := protocols.Count(g, opts.D, pred, opts.congest())
	if err != nil {
		return nil, err
	}
	return fromRun(r), nil
}

// MarkLabel is the label naming the marked set for CheckMarked.
const MarkLabel = protocols.MarkLabel

// CheckMarked solves optmarkedφ (Section 6): is the set marked with
// MarkLabel an optimal solution of the predicate?
func CheckMarked(g *Graph, pred Predicate, opts Options) (*Result, error) {
	r, err := protocols.CheckMarked(g, opts.D, pred, opts.Maximize, opts.congest())
	if err != nil {
		return nil, err
	}
	return fromRun(r), nil
}

// CheckFormula parses a closed MSO formula in the textual syntax of
// internal/mso and decides it via the generic engine.
func CheckFormula(g *Graph, formula string, opts Options) (*Result, error) {
	f, err := mso.Parse(formula)
	if err != nil {
		return nil, err
	}
	engine, err := msoauto.New(f, msoauto.Options{})
	if err != nil {
		return nil, err
	}
	return Check(g, engine, opts)
}

// CompileFormula compiles an MSO formula (optionally with a free set
// variable) into a Predicate usable with any driver. kind must be
// mso.KindVertexSet or mso.KindEdgeSet when freeSetVar is nonempty.
func CompileFormula(f mso.Formula, freeSetVar string, kind mso.VarKind) (Predicate, error) {
	return msoauto.New(f, msoauto.Options{FreeSetVar: freeSetVar, FreeSetKind: kind})
}

// HFreeResult reports the Corollary 7.3 outcome.
type HFreeResult = expansion.HFreeResult

// HFree decides H-freeness of a bounded-expansion network in O(log n)
// rounds (Corollary 7.3): distributed low-treedepth decomposition plus one
// Theorem 6.1 run per part-subset. degCap bounds the peeling degree (use at
// least four times the class's degeneracy).
func HFree(g, h *Graph, degCap int, opts Options) (*HFreeResult, error) {
	return expansion.HFreeDistributed(g, h, degCap, opts.congest())
}

// --- predicate constructors (hand-compiled engines) ---

// IndependentSet is φ(S) = "S is independent" (use with Optimize, maximize).
func IndependentSet() Predicate { return predicates.IndependentSet{} }

// VertexCover is φ(S) = "S covers every edge" (minimize).
func VertexCover() Predicate { return predicates.VertexCover{} }

// DominatingSet is φ(S) = "S dominates every vertex" (minimize).
func DominatingSet() Predicate { return predicates.DominatingSet{} }

// RedBlueDominatingSet is the paper's labeled example: blue-only S
// dominating every red vertex (minimize).
func RedBlueDominatingSet() Predicate {
	return predicates.DominatingSet{DominateLabel: "red", MemberLabel: "blue"}
}

// FeedbackVertexSet is φ(S) = "G - S is acyclic" (minimize).
func FeedbackVertexSet() Predicate { return predicates.FeedbackVertexSet{} }

// Acyclic is the closed predicate "G has no cycle".
func Acyclic() Predicate { return predicates.Acyclicity{} }

// Connected is the closed predicate "G is connected".
func Connected() Predicate { return predicates.Connectivity{} }

// KColorable is the closed predicate "G is k-colorable"; its negation for
// k = 3 is the paper's running example.
func KColorable(k int) Predicate { return predicates.KColorability{K: k} }

// SpanningTree is φ(S) over edge sets = "S is a spanning tree"; with edge
// weights and minimization this is distributed MST.
func SpanningTree() Predicate { return predicates.SpanningTree{} }

// Matching is φ(S) over edge sets = "S is a matching" (maximize).
func Matching() Predicate { return predicates.Matching{} }

// PerfectMatching is φ(S) = "S is a perfect matching" (count for #PM).
func PerfectMatching() Predicate { return predicates.Matching{Perfect: true} }

// Triangles is φ(X) = "X spans a triangle" (count for #triangles).
func Triangles() Predicate { return predicates.Triangles{} }

// SteinerTree is φ(S) over edge sets = "S is an acyclic set connecting all
// 'terminal'-labeled vertices" (minimize for minimum Steiner tree).
func SteinerTree() Predicate { return predicates.SteinerTree{} }

// SteinerTerminalLabel is the vertex label marking Steiner terminals.
const SteinerTerminalLabel = predicates.TerminalLabel

// HamiltonianCycle is φ(S) over edge sets = "S is a Hamiltonian cycle"
// (Decide for Hamiltonicity, Count for the number of cycles, minimize for
// the TSP variant).
func HamiltonianCycle() Predicate { return predicates.HamiltonianCycle{} }

// HSubgraph is the closed predicate "G contains H as a subgraph".
func HSubgraph(h *Graph) (Predicate, error) { return predicates.NewHSubgraph(h) }

// Certificate is a proof-labeling-scheme label (see Certify).
type Certificate = certify.Certificate

// Certify produces the Bousquet–Feuilloley–Pierron-style certificates for a
// closed predicate: per-node labels that a one-round verifier checks
// locally. VerifyCertificates runs that verifier.
func Certify(g *Graph, d int, pred Predicate) ([]Certificate, error) {
	return certify.Prove(g, d, pred)
}

// VerifyCertificates runs the one-round certification verifier; it returns
// the global verdict and the rejecting vertices.
func VerifyCertificates(g *Graph, d int, pred Predicate, certs []Certificate) (bool, []int) {
	return certify.Verify(g, d, pred, certs)
}

// VerifyCertificatesDistributed runs the certification verifier as an
// actual CONGEST protocol (one streamed certificate exchange plus local
// checks) and reports the verdict with the exchange's round cost.
func VerifyCertificatesDistributed(g *Graph, d int, pred Predicate, certs []Certificate) (bool, Stats, error) {
	return certify.VerifyDistributed(g, d, pred, certs, congest.Options{})
}

// Validate sanity-checks an Options value.
func (o Options) Validate() error {
	if o.D < 1 {
		return fmt.Errorf("dmc: Options.D must be >= 1, got %d", o.D)
	}
	return nil
}
